"""Batched kernels vs the naive single-pair oracles, matrix by matrix.

:mod:`tests.phmm.test_properties` pins likelihoods for single pairs; this
module pins the *batched* kernels (the pipeline's actual hot path) against
:mod:`repro.phmm.reference_impl` cell-for-cell: every pair in a B > 1 batch
must reproduce the naive unscaled forward/backward matrices after undoing
the per-row scaling (``f * exp(log_scale)``), in both boundary modes,
including the degenerate shapes N = 1, M = 1 and the empty batch B = 0.
The metrics counters are asserted alongside, tying the observability layer
to the same B*N*M geometry the numerics are verified over.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AlignmentError
from repro.observability import scope
from repro.phmm.alignment import align_batch
from repro.phmm.forward_backward import (
    backward_batch,
    emissions_batch,
    forward_batch,
)
from repro.phmm.model import PHMMParams
from repro.phmm.pwm import pwm_from_codes
from repro.phmm.reference_impl import (
    backward_naive,
    emissions_naive,
    forward_naive,
)

MODES = ("semiglobal", "global")


@st.composite
def batch_case(draw, b_max=4, n_max=6, m_max=7):
    """A batch of B same-shape (pwm, window) pairs with varied qualities.

    min_value=1 for N and M still exercises the degenerate single-row /
    single-column DPs; B starts at 2 so every example is a *real* batch
    (B = 0 and B = 1 have dedicated tests below).
    """
    B = draw(st.integers(min_value=2, max_value=b_max))
    N = draw(st.integers(min_value=1, max_value=n_max))
    M = draw(st.integers(min_value=1, max_value=m_max))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    pwms = np.stack(
        [
            pwm_from_codes(
                rng.integers(0, 4, N).astype(np.uint8),
                rng.uniform(0.0, 0.74, N),
            )
            for _ in range(B)
        ]
    )
    windows = rng.integers(0, 5, (B, M)).astype(np.uint8)
    return pwms, windows


@st.composite
def params_strategy(draw):
    gap_open = draw(st.floats(min_value=0.005, max_value=0.2))
    gap_extend = draw(st.floats(min_value=0.05, max_value=0.9))
    return PHMMParams(gap_open=gap_open, gap_extend=gap_extend)


def unscale(scaled: np.ndarray, log_scale: np.ndarray) -> np.ndarray:
    """Undo per-row scaling: true value is ``scaled[b,i,j] e^{ls[b,i]}``."""
    return scaled * np.exp(log_scale)[:, :, None]


@settings(max_examples=40, deadline=None)
@given(case=batch_case(), params=params_strategy(), mode=st.sampled_from(MODES))
def test_forward_matrices_match_naive_per_pair(case, params, mode):
    pwms, windows = case
    B, N, M = pwms.shape[0], pwms.shape[1], windows.shape[1]
    with scope() as reg:
        pstar = emissions_batch(pwms, windows, params)
        fwd = forward_batch(pstar, params, mode=mode)
    snap = reg.snapshot()
    assert snap.counters["phmm.pairs"] == B
    assert snap.counters["phmm.forward_cells"] == B * N * M

    fM = unscale(fwd.fM, fwd.log_scale)
    fGX = unscale(fwd.fGX, fwd.log_scale)
    fGY = unscale(fwd.fGY, fwd.log_scale)
    for b in range(B):
        nM, nGX, nGY, like = forward_naive(pstar[b], params, mode=mode)
        np.testing.assert_allclose(fM[b], nM, rtol=1e-9, atol=1e-300)
        np.testing.assert_allclose(fGX[b], nGX, rtol=1e-9, atol=1e-300)
        np.testing.assert_allclose(fGY[b], nGY, rtol=1e-9, atol=1e-300)
        if like > 0:
            assert np.isclose(fwd.loglik[b], np.log(like), rtol=1e-9)
        else:
            assert fwd.loglik[b] == -np.inf


@settings(max_examples=40, deadline=None)
@given(case=batch_case(), params=params_strategy(), mode=st.sampled_from(MODES))
def test_backward_matrices_match_naive_per_pair(case, params, mode):
    pwms, windows = case
    B, N, M = pwms.shape[0], pwms.shape[1], windows.shape[1]
    with scope() as reg:
        pstar = emissions_batch(pwms, windows, params)
        bwd = backward_batch(pstar, params, mode=mode)
    assert reg.snapshot().counters["phmm.backward_cells"] == B * N * M

    bM = unscale(bwd.bM, bwd.log_scale)
    bGX = unscale(bwd.bGX, bwd.log_scale)
    bGY = unscale(bwd.bGY, bwd.log_scale)
    for b in range(B):
        nM, nGX, nGY = backward_naive(pstar[b], params, mode=mode)
        np.testing.assert_allclose(bM[b], nM, rtol=1e-9, atol=1e-300)
        np.testing.assert_allclose(bGX[b], nGX, rtol=1e-9, atol=1e-300)
        np.testing.assert_allclose(bGY[b], nGY, rtol=1e-9, atol=1e-300)


@settings(max_examples=25, deadline=None)
@given(case=batch_case(b_max=3, n_max=5, m_max=5))
def test_emissions_match_naive_per_pair(case):
    pwms, windows = case
    params = PHMMParams()
    pstar = emissions_batch(pwms, windows, params)
    for b in range(pwms.shape[0]):
        np.testing.assert_allclose(
            pstar[b], emissions_naive(pwms[b], windows[b], params), rtol=1e-12
        )


@settings(max_examples=30, deadline=None)
@given(case=batch_case(), params=params_strategy(), mode=st.sampled_from(MODES))
def test_batching_is_not_load_bearing(case, params, mode):
    """Each pair's result is identical whether aligned in a batch or alone."""
    pwms, windows = case
    pstar = emissions_batch(pwms, windows, params)
    batched = forward_batch(pstar, params, mode=mode)
    for b in range(pwms.shape[0]):
        solo = forward_batch(pstar[b : b + 1], params, mode=mode)
        np.testing.assert_array_equal(batched.fM[b], solo.fM[0])
        np.testing.assert_array_equal(batched.log_scale[b], solo.log_scale[0])
        np.testing.assert_array_equal(batched.loglik[b], solo.loglik[0])


class TestDegenerateShapes:
    def test_empty_batch_forward_backward(self):
        params = PHMMParams()
        pstar = np.zeros((0, 3, 5))
        fwd = forward_batch(pstar, params)
        bwd = backward_batch(pstar, params)
        assert fwd.fM.shape == fwd.fGX.shape == fwd.fGY.shape == (0, 4, 6)
        assert fwd.loglik.shape == (0,)
        assert bwd.bM.shape == (0, 4, 6)

    def test_empty_batch_align(self):
        params = PHMMParams()
        pwms = np.zeros((0, 3, 4))
        windows = np.zeros((0, 5), dtype=np.uint8)
        outcome = align_batch(pwms, windows, params)
        assert outcome.z.shape == (0, 5, 5)
        assert outcome.loglik.shape == (0,)

    def test_empty_batch_counts_zero_cells(self):
        with scope() as reg:
            forward_batch(np.zeros((0, 3, 5)), PHMMParams())
        snap = reg.snapshot()
        assert snap.counters["phmm.pairs"] == 0
        assert snap.counters["phmm.forward_cells"] == 0
        assert snap.counters["phmm.batches"] == 1

    @pytest.mark.parametrize("mode", MODES)
    def test_single_cell_problem_matches_naive(self, mode):
        """N = M = 1: one match cell; the smallest non-trivial DP."""
        params = PHMMParams()
        rng = np.random.default_rng(5)
        pwms = np.stack(
            [pwm_from_codes(np.array([c], dtype=np.uint8), np.array([0.1]))
             for c in range(3)]
        )
        windows = rng.integers(0, 5, (3, 1)).astype(np.uint8)
        pstar = emissions_batch(pwms, windows, params)
        fwd = forward_batch(pstar, params, mode=mode)
        for b in range(3):
            *_, like = forward_naive(pstar[b], params, mode=mode)
            assert np.isclose(np.exp(fwd.loglik[b]), like, rtol=1e-9)

    @pytest.mark.parametrize("bad", [(2, 0, 5), (2, 5, 0)])
    def test_zero_length_read_or_window_rejected(self, bad):
        with pytest.raises(AlignmentError):
            forward_batch(np.zeros(bad), PHMMParams())
        with pytest.raises(AlignmentError):
            backward_batch(np.zeros(bad), PHMMParams())
