"""Tests for position-weight matrices."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SequenceError
from repro.genome.alphabet import encode
from repro.genome.fastq import Read
from repro.phmm.pwm import (
    flat_pwm,
    pwm_from_codes,
    pwm_from_read,
    reverse_complement_pwm,
    validate_pwm,
)


class TestPwmFromCodes:
    def test_known_values(self):
        pwm = pwm_from_codes(encode("AC"), np.array([0.03, 0.3]))
        assert pwm[0].tolist() == pytest.approx([0.97, 0.01, 0.01, 0.01])
        assert pwm[1, 1] == pytest.approx(0.7)
        assert pwm[1, 0] == pytest.approx(0.1)

    def test_rows_normalise(self):
        rng = np.random.default_rng(0)
        pwm = pwm_from_codes(
            rng.integers(0, 4, 50).astype(np.uint8), rng.uniform(0, 1, 50)
        )
        validate_pwm(pwm)

    def test_n_rejected(self):
        with pytest.raises(SequenceError):
            pwm_from_codes(encode("AN"), np.array([0.1, 0.1]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(SequenceError):
            pwm_from_codes(encode("ACG"), np.array([0.1]))

    def test_empty_rejected(self):
        with pytest.raises(SequenceError):
            pwm_from_codes(encode(""), np.array([]))

    def test_bad_probability_rejected(self):
        with pytest.raises(SequenceError):
            pwm_from_codes(encode("A"), np.array([1.5]))

    def test_from_read(self):
        read = Read("r", encode("ACGT"), np.array([10, 20, 30, 40], dtype=np.uint8))
        pwm = pwm_from_read(read)
        assert pwm[0, 0] == pytest.approx(0.9)
        assert pwm[3, 3] == pytest.approx(0.9999)


class TestFlatPwm:
    def test_one_hot(self):
        pwm = flat_pwm(encode("ACGT"))
        assert (pwm == np.eye(4)).all()

    def test_n_rejected(self):
        with pytest.raises(SequenceError):
            flat_pwm(encode("N"))


class TestReverseComplementPwm:
    def test_involution(self):
        rng = np.random.default_rng(1)
        pwm = pwm_from_codes(
            rng.integers(0, 4, 30).astype(np.uint8), rng.uniform(0, 0.5, 30)
        )
        assert np.allclose(reverse_complement_pwm(reverse_complement_pwm(pwm)), pwm)

    def test_matches_revcomp_read(self):
        # PWM of revcomp(read) must equal revcomp of PWM(read)
        from repro.genome.alphabet import reverse_complement

        codes = encode("AACGT")
        errs = np.array([0.01, 0.02, 0.05, 0.1, 0.2])
        direct = pwm_from_codes(reverse_complement(codes), errs[::-1])
        via_pwm = reverse_complement_pwm(pwm_from_codes(codes, errs))
        assert np.allclose(direct, via_pwm)

    def test_shape_rejected(self):
        with pytest.raises(SequenceError):
            reverse_complement_pwm(np.ones((3, 3)))


class TestValidatePwm:
    def test_rejects_negative(self):
        pwm = np.full((2, 4), 0.25)
        pwm[0, 0] = -0.1
        with pytest.raises(SequenceError):
            validate_pwm(pwm)

    def test_rejects_unnormalised(self):
        with pytest.raises(SequenceError):
            validate_pwm(np.full((2, 4), 0.3))

    @given(st.integers(min_value=1, max_value=60), st.integers(min_value=0, max_value=2**32 - 1))
    def test_generated_pwms_always_valid(self, n, seed):
        rng = np.random.default_rng(seed)
        pwm = pwm_from_codes(
            rng.integers(0, 4, n).astype(np.uint8), rng.uniform(0, 1, n)
        )
        validate_pwm(pwm)
