"""Tests for the serial GNUMAP-SNP pipeline."""

import numpy as np
import pytest

from repro.errors import PipelineError
from repro.evaluation.metrics import compare_to_truth
from repro.experiments.workload import build_workload
from repro.genome.fastq import Read
from repro.pipeline.config import PipelineConfig
from repro.pipeline.gnumap import GnumapSnp, MappingStats


@pytest.fixture(scope="module")
def workload():
    return build_workload(scale="tiny", seed=101)


@pytest.fixture(scope="module")
def pipeline(workload):
    return GnumapSnp(workload.reference, PipelineConfig())


@pytest.fixture(scope="module")
def result(pipeline, workload):
    return pipeline.run(workload.reads)


class TestEndToEnd:
    def test_most_reads_map(self, result, workload):
        assert result.stats.n_reads == workload.n_reads
        assert result.stats.n_mapped > 0.95 * workload.n_reads
        assert result.stats.n_pairs >= result.stats.n_mapped

    def test_finds_planted_snps_with_high_precision(self, result, workload):
        counts = compare_to_truth(result.snps, workload.catalog)
        assert counts.precision >= 0.9
        assert counts.recall >= 0.3  # tiny workload is low-coverage

    def test_deterministic(self, pipeline, workload, result):
        again = pipeline.run(workload.reads)
        assert {(s.pos, s.alt_name) for s in again.snps} == {
            (s.pos, s.alt_name) for s in result.snps
        }
        assert np.allclose(
            again.accumulator.snapshot(), result.accumulator.snapshot()
        )

    def test_timers_populated(self, result):
        for stage in ("seed", "align", "accumulate", "call"):
            assert stage in result.timers
            assert result.timers[stage].elapsed > 0

    def test_alt_alleles_match_truth(self, result, workload):
        counts = compare_to_truth(result.snps, workload.catalog, allele_aware=True)
        loose = compare_to_truth(result.snps, workload.catalog)
        assert counts.tp >= 0.9 * loose.tp

    def test_evidence_depth_near_coverage(self, result, workload):
        depth = result.accumulator.total_depth()
        interior = depth[100:-100]
        assert abs(np.median(interior) - workload.coverage) < workload.coverage * 0.4


class TestStages:
    def test_accumulator_reuse_is_online(self, pipeline, workload):
        acc = pipeline.new_accumulator()
        half = workload.n_reads // 2
        pipeline.map_reads(workload.reads[:half], accumulator=acc)
        first_total = acc.total_depth().sum()
        pipeline.map_reads(workload.reads[half:], accumulator=acc)
        assert acc.total_depth().sum() > first_total

    def test_split_mapping_equals_single_run(self, pipeline, workload, result):
        acc = pipeline.new_accumulator()
        third = workload.n_reads // 3
        pipeline.map_reads(workload.reads[:third], accumulator=acc)
        pipeline.map_reads(workload.reads[third:], accumulator=acc)
        assert np.allclose(
            acc.snapshot(), result.accumulator.snapshot(), atol=1e-3
        )

    def test_wrong_accumulator_length_rejected(self, pipeline, workload):
        from repro.memory.base import make_accumulator

        with pytest.raises(PipelineError):
            pipeline.map_reads(
                workload.reads[:1], accumulator=make_accumulator("NORM", 10)
            )

    def test_no_reads(self, pipeline):
        acc, stats = pipeline.map_reads([])
        assert stats == MappingStats()
        assert acc.total_depth().sum() == 0
        assert pipeline.call_snps(acc) == []

    def test_unmappable_read_counted(self, pipeline):
        rng = np.random.default_rng(0)
        junk = Read(
            "junk",
            rng.integers(0, 4, 62).astype(np.uint8),
            np.full(62, 40, dtype=np.uint8),
        )
        _acc, stats = pipeline.map_reads([junk])
        assert stats.n_unmapped >= 0
        assert stats.n_reads == 1


class TestConfigurations:
    def test_quality_blind_runs(self, workload):
        pipe = GnumapSnp(workload.reference, PipelineConfig(quality_aware=False))
        result = pipe.run(workload.reads[:200])
        assert result.stats.n_mapped > 0

    def test_discretised_accumulators_close_to_dense(self, workload):
        reads = workload.reads
        dense = GnumapSnp(workload.reference, PipelineConfig()).run(reads)
        byte = GnumapSnp(
            workload.reference, PipelineConfig(accumulator="CHARDISC")
        ).run(reads)
        d = {(s.pos, s.alt_name) for s in dense.snps}
        b = {(s.pos, s.alt_name) for s in byte.snps}
        # CHARDISC loses at most a small fraction of calls, adds none
        assert b <= d or len(b - d) <= 1
        assert len(d - b) <= max(2, len(d) // 2)

    def test_small_batch_size_same_result(self, workload):
        reads = workload.reads[:300]
        big = GnumapSnp(workload.reference, PipelineConfig(batch_size=4096)).run(reads)
        small = GnumapSnp(workload.reference, PipelineConfig(batch_size=16)).run(reads)
        assert np.allclose(
            big.accumulator.snapshot(), small.accumulator.snapshot(), atol=1e-6
        )

    def test_mixed_read_lengths_supported(self, workload):
        ref = workload.reference
        rng = np.random.default_rng(1)
        reads = []
        for i, L in enumerate([40, 40, 60, 60, 40]):
            pos = int(rng.integers(0, len(ref) - L))
            reads.append(
                Read(
                    f"m{i}",
                    ref.codes[pos : pos + L].copy(),
                    np.full(L, 38, dtype=np.uint8),
                )
            )
        pipe = GnumapSnp(ref, PipelineConfig())
        _acc, stats = pipe.map_reads(reads)
        assert stats.n_mapped == 5


class TestEdgeCandidates:
    """Regression: candidates whose alignment windows overhang the genome
    (negative ``start`` on the left edge, ``start`` near ``glen`` on the
    right) must slice cleanly — N-padded off-genome columns, band centred
    on the true seed diagonal — in every band mode."""

    @pytest.fixture(scope="class")
    def edge_setup(self, workload):
        ref = workload.reference
        junk = np.asarray([0, 1, 2, 3] * 5, dtype=np.uint8)
        left = Read(
            "left_overhang",
            np.concatenate([junk, np.asarray(ref.codes[:42])]),
            np.full(62, 40, dtype=np.uint8),
        )
        right = Read(
            "right_overhang",
            np.concatenate([np.asarray(ref.codes[-42:]), junk]),
            np.full(62, 40, dtype=np.uint8),
        )
        return ref, left, right

    @pytest.mark.parametrize("band_mode", ["off", "fixed", "adaptive"])
    def test_overhanging_reads_map_in_all_band_modes(self, edge_setup, band_mode):
        ref, left, right = edge_setup
        pipe = GnumapSnp(ref, PipelineConfig(band_mode=band_mode))
        acc, stats = pipe.map_reads([left, right])
        assert stats.n_mapped == 2
        ev = acc.snapshot()
        glen = len(ref)
        # Evidence lands where the overlapping halves align, nowhere off-end.
        assert ev[:42].sum() > 0, "left-overhang evidence missing"
        assert ev[glen - 42 :].sum() > 0, "right-overhang evidence missing"

    @pytest.mark.parametrize("band_mode", ["off", "fixed", "adaptive"])
    def test_overhang_with_filtration(self, edge_setup, band_mode):
        ref, left, right = edge_setup
        from repro.index.seeding import SeederConfig

        pipe = GnumapSnp(
            ref,
            PipelineConfig(
                band_mode=band_mode,
                seeder=SeederConfig(qgram_filter=True),
            ),
        )
        _acc, stats = pipe.map_reads([left, right])
        assert stats.n_mapped == 2

    def test_clamped_start_keeps_band_centred(self, workload):
        # A hand-built candidate with start clipped away from its diagonal:
        # the batch center must follow the diagonal, not the clamp.
        from repro.index.seeding import CandidateRegion

        cand = CandidateRegion(start=0, strand=1, support=3, diagonal=-7)
        cfg = PipelineConfig()
        assert cand.band_diagonal == -7
        assert cfg.pad + (cand.band_diagonal - cand.start) == cfg.pad - 7


class TestSeedLenThreading:
    def test_pipeline_builds_long_table_from_config(self, workload):
        from repro.index.seeding import SeederConfig

        pipe = GnumapSnp(
            workload.reference,
            PipelineConfig(seeder=SeederConfig(seed_len=20)),
        )
        assert pipe.index.seed_len == 20
        assert pipe.seeder.index is pipe.index

    def test_supplied_index_seed_len_mismatch_rejected(self, workload):
        from repro.index.hashindex import GenomeIndex
        from repro.index.seeding import SeederConfig

        plain = GenomeIndex(workload.reference, k=10)
        with pytest.raises(PipelineError):
            GnumapSnp(
                workload.reference,
                PipelineConfig(seeder=SeederConfig(seed_len=20)),
                index=plain,
            )

    def test_filtered_config_calls_match_default(self, workload, result):
        from repro.index.seeding import SeederConfig

        filt = GnumapSnp(
            workload.reference,
            PipelineConfig(seeder=SeederConfig(seed_len=20, qgram_filter=True)),
        ).run(workload.reads)
        assert {(s.pos, s.alt_name) for s in filt.snps} == {
            (s.pos, s.alt_name) for s in result.snps
        }
