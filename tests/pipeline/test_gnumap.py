"""Tests for the serial GNUMAP-SNP pipeline."""

import numpy as np
import pytest

from repro.errors import PipelineError
from repro.evaluation.metrics import compare_to_truth
from repro.experiments.workload import build_workload
from repro.genome.fastq import Read
from repro.pipeline.config import PipelineConfig
from repro.pipeline.gnumap import GnumapSnp, MappingStats


@pytest.fixture(scope="module")
def workload():
    return build_workload(scale="tiny", seed=101)


@pytest.fixture(scope="module")
def pipeline(workload):
    return GnumapSnp(workload.reference, PipelineConfig())


@pytest.fixture(scope="module")
def result(pipeline, workload):
    return pipeline.run(workload.reads)


class TestEndToEnd:
    def test_most_reads_map(self, result, workload):
        assert result.stats.n_reads == workload.n_reads
        assert result.stats.n_mapped > 0.95 * workload.n_reads
        assert result.stats.n_pairs >= result.stats.n_mapped

    def test_finds_planted_snps_with_high_precision(self, result, workload):
        counts = compare_to_truth(result.snps, workload.catalog)
        assert counts.precision >= 0.9
        assert counts.recall >= 0.3  # tiny workload is low-coverage

    def test_deterministic(self, pipeline, workload, result):
        again = pipeline.run(workload.reads)
        assert {(s.pos, s.alt_name) for s in again.snps} == {
            (s.pos, s.alt_name) for s in result.snps
        }
        assert np.allclose(
            again.accumulator.snapshot(), result.accumulator.snapshot()
        )

    def test_timers_populated(self, result):
        for stage in ("seed", "align", "accumulate", "call"):
            assert stage in result.timers
            assert result.timers[stage].elapsed > 0

    def test_alt_alleles_match_truth(self, result, workload):
        counts = compare_to_truth(result.snps, workload.catalog, allele_aware=True)
        loose = compare_to_truth(result.snps, workload.catalog)
        assert counts.tp >= 0.9 * loose.tp

    def test_evidence_depth_near_coverage(self, result, workload):
        depth = result.accumulator.total_depth()
        interior = depth[100:-100]
        assert abs(np.median(interior) - workload.coverage) < workload.coverage * 0.4


class TestStages:
    def test_accumulator_reuse_is_online(self, pipeline, workload):
        acc = pipeline.new_accumulator()
        half = workload.n_reads // 2
        pipeline.map_reads(workload.reads[:half], accumulator=acc)
        first_total = acc.total_depth().sum()
        pipeline.map_reads(workload.reads[half:], accumulator=acc)
        assert acc.total_depth().sum() > first_total

    def test_split_mapping_equals_single_run(self, pipeline, workload, result):
        acc = pipeline.new_accumulator()
        third = workload.n_reads // 3
        pipeline.map_reads(workload.reads[:third], accumulator=acc)
        pipeline.map_reads(workload.reads[third:], accumulator=acc)
        assert np.allclose(
            acc.snapshot(), result.accumulator.snapshot(), atol=1e-3
        )

    def test_wrong_accumulator_length_rejected(self, pipeline, workload):
        from repro.memory.base import make_accumulator

        with pytest.raises(PipelineError):
            pipeline.map_reads(
                workload.reads[:1], accumulator=make_accumulator("NORM", 10)
            )

    def test_no_reads(self, pipeline):
        acc, stats = pipeline.map_reads([])
        assert stats == MappingStats()
        assert acc.total_depth().sum() == 0
        assert pipeline.call_snps(acc) == []

    def test_unmappable_read_counted(self, pipeline):
        rng = np.random.default_rng(0)
        junk = Read(
            "junk",
            rng.integers(0, 4, 62).astype(np.uint8),
            np.full(62, 40, dtype=np.uint8),
        )
        _acc, stats = pipeline.map_reads([junk])
        assert stats.n_unmapped >= 0
        assert stats.n_reads == 1


class TestConfigurations:
    def test_quality_blind_runs(self, workload):
        pipe = GnumapSnp(workload.reference, PipelineConfig(quality_aware=False))
        result = pipe.run(workload.reads[:200])
        assert result.stats.n_mapped > 0

    def test_discretised_accumulators_close_to_dense(self, workload):
        reads = workload.reads
        dense = GnumapSnp(workload.reference, PipelineConfig()).run(reads)
        byte = GnumapSnp(
            workload.reference, PipelineConfig(accumulator="CHARDISC")
        ).run(reads)
        d = {(s.pos, s.alt_name) for s in dense.snps}
        b = {(s.pos, s.alt_name) for s in byte.snps}
        # CHARDISC loses at most a small fraction of calls, adds none
        assert b <= d or len(b - d) <= 1
        assert len(d - b) <= max(2, len(d) // 2)

    def test_small_batch_size_same_result(self, workload):
        reads = workload.reads[:300]
        big = GnumapSnp(workload.reference, PipelineConfig(batch_size=4096)).run(reads)
        small = GnumapSnp(workload.reference, PipelineConfig(batch_size=16)).run(reads)
        assert np.allclose(
            big.accumulator.snapshot(), small.accumulator.snapshot(), atol=1e-6
        )

    def test_mixed_read_lengths_supported(self, workload):
        ref = workload.reference
        rng = np.random.default_rng(1)
        reads = []
        for i, L in enumerate([40, 40, 60, 60, 40]):
            pos = int(rng.integers(0, len(ref) - L))
            reads.append(
                Read(
                    f"m{i}",
                    ref.codes[pos : pos + L].copy(),
                    np.full(L, 38, dtype=np.uint8),
                )
            )
        pipe = GnumapSnp(ref, PipelineConfig())
        _acc, stats = pipe.map_reads(reads)
        assert stats.n_mapped == 5
