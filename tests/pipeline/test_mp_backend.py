"""Tests for the real multiprocessing backend (small workloads: process
startup dominates, so these verify correctness, not speed)."""

import numpy as np
import pytest

from repro.errors import PipelineError
from repro.experiments.workload import build_workload
from repro.pipeline.config import PipelineConfig
from repro.pipeline.gnumap import GnumapSnp
from repro.pipeline.mp_backend import run_multiprocessing


@pytest.fixture(scope="module")
def workload():
    wl = build_workload(scale="tiny", seed=31)
    # trim to keep the process-pool test fast
    wl.reads = wl.reads[:250]
    return wl


class TestMultiprocessingBackend:
    def test_single_worker_is_serial(self, workload):
        config = PipelineConfig()
        serial = GnumapSnp(workload.reference, config).run(workload.reads)
        mp1 = run_multiprocessing(workload.reference, workload.reads, config, n_workers=1)
        assert {(s.pos, s.alt_name) for s in mp1.snps} == {
            (s.pos, s.alt_name) for s in serial.snps
        }

    def test_two_workers_match_serial(self, workload):
        config = PipelineConfig()
        serial = GnumapSnp(workload.reference, config).run(workload.reads)
        mp2 = run_multiprocessing(workload.reference, workload.reads, config, n_workers=2)
        assert {(s.pos, s.alt_name) for s in mp2.snps} == {
            (s.pos, s.alt_name) for s in serial.snps
        }
        assert np.allclose(
            mp2.accumulator.snapshot(), serial.accumulator.snapshot(), atol=1e-3
        )
        assert mp2.stats.n_reads == len(workload.reads)

    def test_zero_workers_rejected(self, workload):
        with pytest.raises(PipelineError):
            run_multiprocessing(workload.reference, workload.reads, n_workers=0)

    def test_empty_reads(self, workload):
        result = run_multiprocessing(workload.reference, [], n_workers=2)
        assert result.snps == []
