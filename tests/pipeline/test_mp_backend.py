"""Tests for the real multiprocessing backend (small workloads: process
startup dominates, so these verify correctness, not speed).

Fault-recovery tests pin the fork start method: the recovery logic is
start-method-agnostic (covered by ``TestStartMethods``) and fork keeps the
repeated worker spawns cheap on CI.
"""

import multiprocessing as mp

import numpy as np
import pytest

from repro.errors import PipelineError
from repro.experiments.workload import build_workload
from repro.observability import scope
from repro.phmm import sanitize
from repro.pipeline.config import ParallelConfig, PipelineConfig
from repro.pipeline.gnumap import GnumapSnp
from repro.pipeline.mp_backend import run_multiprocessing


@pytest.fixture(scope="module")
def workload():
    wl = build_workload(scale="tiny", seed=31)
    # trim to keep the process-pool test fast
    wl.reads = wl.reads[:250]
    return wl


@pytest.fixture(scope="module")
def serial_result(workload):
    return GnumapSnp(workload.reference, PipelineConfig()).run(workload.reads)


def _calls(result):
    return {(s.pos, s.alt_name) for s in result.snps}


def _fork_config(**kwargs):
    return PipelineConfig(parallel=ParallelConfig(start_method="fork", **kwargs))


class TestMultiprocessingBackend:
    def test_single_worker_is_serial(self, workload):
        config = PipelineConfig()
        serial = GnumapSnp(workload.reference, config).run(workload.reads)
        mp1 = run_multiprocessing(workload.reference, workload.reads, config, n_workers=1)
        assert {(s.pos, s.alt_name) for s in mp1.snps} == {
            (s.pos, s.alt_name) for s in serial.snps
        }

    def test_two_workers_match_serial(self, workload):
        config = PipelineConfig()
        serial = GnumapSnp(workload.reference, config).run(workload.reads)
        mp2 = run_multiprocessing(workload.reference, workload.reads, config, n_workers=2)
        assert {(s.pos, s.alt_name) for s in mp2.snps} == {
            (s.pos, s.alt_name) for s in serial.snps
        }
        assert np.allclose(
            mp2.accumulator.snapshot(), serial.accumulator.snapshot(), atol=1e-3
        )
        assert mp2.stats.n_reads == len(workload.reads)

    def test_zero_workers_rejected(self, workload):
        with pytest.raises(PipelineError):
            run_multiprocessing(workload.reference, workload.reads, n_workers=0)

    def test_empty_reads(self, workload):
        result = run_multiprocessing(workload.reference, [], n_workers=2)
        assert result.snps == []


class TestStartMethods:
    @pytest.mark.parametrize("method", ["fork", "spawn"])
    def test_start_method_matches_serial(self, workload, serial_result, method):
        if method not in mp.get_all_start_methods():
            pytest.skip(f"{method} start method unavailable")
        result = run_multiprocessing(
            workload.reference,
            workload.reads,
            PipelineConfig(parallel=ParallelConfig(start_method=method)),
            n_workers=2,
        )
        assert _calls(result) == _calls(serial_result)


class TestDegenerateLayouts:
    def test_more_workers_than_reads(self, workload):
        reads = workload.reads[:3]
        serial = GnumapSnp(workload.reference, PipelineConfig()).run(reads)
        with scope() as reg:
            result = run_multiprocessing(
                workload.reference, reads, _fork_config(), n_workers=8
            )
        assert _calls(result) == _calls(serial)
        snap = reg.snapshot()
        # 3 reads -> 3 chunks: only 3 of the 8 requested workers can work.
        assert snap.gauges["mp.workers"] == 8
        assert snap.gauges["mp.workers_effective"] == 3

    def test_zero_reads_parallel_reports_serial_fallback(self, workload):
        with scope() as reg:
            result = run_multiprocessing(workload.reference, [], n_workers=4)
        assert result.snps == []
        snap = reg.snapshot()
        # The degenerate serial path is visible in metrics, never silent.
        assert snap.counter("mp.serial_fallbacks") == 1
        assert snap.gauges["mp.workers_effective"] == 1

    def test_single_read_runs_serial(self, workload):
        with scope() as reg:
            result = run_multiprocessing(
                workload.reference, workload.reads[:1], n_workers=4
            )
        assert result.stats.n_reads == 1
        snap = reg.snapshot()
        assert snap.counter("mp.serial_fallbacks") == 1
        assert snap.gauges["mp.workers_effective"] == 1


class TestFaultRecovery:
    def test_crash_and_hang_recover_with_identical_output(
        self, workload, serial_result
    ):
        # The acceptance scenario: one crashed worker plus one hang past
        # the chunk deadline; the run completes, the calls match serial,
        # and the recovery counters tell the story.
        faulted = _fork_config(
            fault_spec="crash:chunk=0;hang:chunk=1,secs=30",
            chunk_timeout=2.0,
        )
        with scope() as reg:
            result = run_multiprocessing(
                workload.reference, workload.reads, faulted, n_workers=2
            )
        assert _calls(result) == _calls(serial_result)
        snap = reg.snapshot()
        assert snap.counter("mp.worker_deaths") == 1
        assert snap.counter("mp.chunk_timeouts") == 1
        assert snap.counter("mp.chunk_retries") == 2
        assert snap.counter("mp.serial_fallbacks") == 0

        # Byte-identity: a faulted run merges the same partials in the
        # same order as a clean run of the same chunking.
        clean = run_multiprocessing(
            workload.reference, workload.reads, _fork_config(), n_workers=2
        )
        assert np.array_equal(
            result.accumulator.snapshot(), clean.accumulator.snapshot()
        )

    def test_corrupt_partial_is_rejected_and_retried(
        self, workload, serial_result
    ):
        faulted = _fork_config(fault_spec="corrupt:chunk=0")
        with sanitize.sanitized(True), scope() as reg:
            result = run_multiprocessing(
                workload.reference, workload.reads, faulted, n_workers=2
            )
        assert _calls(result) == _calls(serial_result)
        snap = reg.snapshot()
        assert snap.counter("mp.partial_rejects") == 1
        assert snap.counter("mp.chunk_retries") == 1
        # The poisoned partial never reached the merge.
        assert np.isfinite(result.accumulator.snapshot()).all()

    def test_corrupt_partial_ignored_without_sanitizer_validation(
        self, workload
    ):
        # Without the sanitizer the pre-merge validation hook is off: the
        # poison flows through — exactly why the CI fault smoke runs with
        # validation on.  This pins the gating, not a desirable outcome.
        from repro.pipeline.mp_backend import map_reads_multiprocessing

        faulted = _fork_config(fault_spec="corrupt:chunk=0")
        pipe = GnumapSnp(workload.reference, faulted)
        with sanitize.sanitized(False), scope() as reg:
            merged, _ = map_reads_multiprocessing(pipe, workload.reads, 2)
        assert reg.snapshot().counter("mp.partial_rejects") == 0
        assert np.isnan(merged.snapshot()).any()

    def test_exhausted_retries_degrade_to_serial_fallback(
        self, workload, serial_result
    ):
        # A chunk that fails every attempt must complete serially in the
        # parent — the run never dies, the degradation is counted.
        faulted = _fork_config(
            fault_spec="crash:chunk=0,times=10", max_retries=1
        )
        with scope() as reg:
            result = run_multiprocessing(
                workload.reference, workload.reads, faulted, n_workers=2
            )
        assert _calls(result) == _calls(serial_result)
        snap = reg.snapshot()
        assert snap.counter("mp.serial_fallbacks") == 1
        assert snap.counter("mp.worker_deaths") == 2
        assert snap.counter("mp.chunk_retries") == 1

        clean = run_multiprocessing(
            workload.reference, workload.reads, _fork_config(), n_workers=2
        )
        assert np.array_equal(
            result.accumulator.snapshot(), clean.accumulator.snapshot()
        )

    def test_env_var_activates_fault_plan(self, workload, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "crash:chunk=0")
        with scope() as reg:
            run_multiprocessing(
                workload.reference, workload.reads, _fork_config(), n_workers=2
            )
        assert reg.snapshot().counter("mp.worker_deaths") == 1
