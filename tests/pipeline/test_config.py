"""Tests for pipeline configuration validation."""

import pytest

from repro.errors import ConfigError
from repro.pipeline.config import PipelineConfig


class TestPipelineConfig:
    def test_defaults(self):
        cfg = PipelineConfig()
        assert cfg.k == 10  # the paper's default mer-size
        assert cfg.accumulator == "NORM"
        assert cfg.alignment_mode == "semiglobal"

    def test_accumulator_names(self):
        for name in ("NORM", "CHARDISC", "CENTDISC", "chardisc"):
            PipelineConfig(accumulator=name)
        with pytest.raises(ConfigError):
            PipelineConfig(accumulator="DENSE")

    def test_validation(self):
        with pytest.raises(ConfigError):
            PipelineConfig(k=0)
        with pytest.raises(ConfigError):
            PipelineConfig(pad=-1)
        with pytest.raises(ConfigError):
            PipelineConfig(batch_size=0)
        with pytest.raises(ConfigError):
            PipelineConfig(edge_policy="wat")
        with pytest.raises(ConfigError):
            PipelineConfig(min_ratio=1.0)
        with pytest.raises(ConfigError):
            PipelineConfig(alignment_mode="local")

    def test_float32_requires_semiglobal_alignment(self):
        # Global paths accumulate the full end-to-end gap penalty in one
        # score, outside the float32 escalation contract's validated range.
        with pytest.raises(ConfigError, match="semiglobal"):
            PipelineConfig(
                phmm_kernel="wavefront",
                phmm_dtype="float32",
                alignment_mode="global",
            )
        PipelineConfig(phmm_kernel="wavefront", phmm_dtype="float32")
        PipelineConfig(phmm_kernel="wavefront", alignment_mode="global")

    def test_band_defaults_off(self):
        cfg = PipelineConfig()
        assert cfg.band_mode == "off"
        assert not cfg.banding
        assert cfg.band_cell_fraction(62) == 1.0

    def test_band_validation(self):
        with pytest.raises(ConfigError):
            PipelineConfig(band_mode="diagonal")
        with pytest.raises(ConfigError):
            PipelineConfig(band_w=0)
        with pytest.raises(ConfigError):
            PipelineConfig(band_tolerance=1.0)
        with pytest.raises(ConfigError):
            PipelineConfig(band_tolerance=-0.1)

    def test_banding_requires_marginal_posteriors(self):
        assert PipelineConfig(band_mode="adaptive").banding
        assert not PipelineConfig(
            band_mode="adaptive", posterior_mode="viterbi"
        ).banding

    def test_band_cell_fraction(self):
        cfg = PipelineConfig(band_mode="fixed", band_w=10)
        # band of 21 diagonals over a (read_len + 2*pad)-wide window
        assert cfg.band_cell_fraction(62) == pytest.approx(21 / 78)
        # a band wider than the window means no savings, never > 1
        assert PipelineConfig(
            band_mode="fixed", band_w=1000
        ).band_cell_fraction(62) == 1.0

    def test_mp_defaults(self):
        cfg = PipelineConfig()
        assert cfg.mp_start_method == "spawn"
        assert cfg.mp_chunk_timeout == 120.0
        assert cfg.mp_max_retries == 2
        assert cfg.mp_chunks_per_worker == 4
        assert cfg.mp_fault_spec == ""

    def test_mp_validation(self):
        with pytest.raises(ConfigError):
            PipelineConfig(mp_start_method="thread")
        with pytest.raises(ConfigError):
            PipelineConfig(mp_chunk_timeout=0.0)
        with pytest.raises(ConfigError):
            PipelineConfig(mp_max_retries=-1)
        with pytest.raises(ConfigError):
            PipelineConfig(mp_backoff_base=-0.1)
        with pytest.raises(ConfigError):
            PipelineConfig(mp_chunks_per_worker=0)
        # A malformed fault spec fails at config time, not mid-run.
        with pytest.raises(ConfigError):
            PipelineConfig(mp_fault_spec="segfault:chunk=0")

    def test_subconfigs_carried(self):
        from repro.calling.caller import CallerConfig
        from repro.index.seeding import SeederConfig

        cfg = PipelineConfig(
            seeder=SeederConfig(min_support=3),
            caller=CallerConfig(alpha=0.01),
        )
        assert cfg.seeder.min_support == 3
        assert cfg.caller.alpha == 0.01
