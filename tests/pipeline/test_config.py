"""Tests for pipeline configuration validation."""

import warnings

import pytest

from repro.errors import ConfigError
from repro.pipeline.config import ParallelConfig, PipelineConfig


class TestPipelineConfig:
    def test_defaults(self):
        cfg = PipelineConfig()
        assert cfg.k == 10  # the paper's default mer-size
        assert cfg.accumulator == "NORM"
        assert cfg.alignment_mode == "semiglobal"

    def test_accumulator_names(self):
        for name in ("NORM", "CHARDISC", "CENTDISC", "chardisc"):
            PipelineConfig(accumulator=name)
        with pytest.raises(ConfigError):
            PipelineConfig(accumulator="DENSE")

    def test_validation(self):
        with pytest.raises(ConfigError):
            PipelineConfig(k=0)
        with pytest.raises(ConfigError):
            PipelineConfig(pad=-1)
        with pytest.raises(ConfigError):
            PipelineConfig(batch_size=0)
        with pytest.raises(ConfigError):
            PipelineConfig(edge_policy="wat")
        with pytest.raises(ConfigError):
            PipelineConfig(min_ratio=1.0)
        with pytest.raises(ConfigError):
            PipelineConfig(alignment_mode="local")

    def test_float32_requires_semiglobal_alignment(self):
        # Global paths accumulate the full end-to-end gap penalty in one
        # score, outside the float32 escalation contract's validated range.
        with pytest.raises(ConfigError, match="semiglobal"):
            PipelineConfig(
                phmm_kernel="wavefront",
                phmm_dtype="float32",
                alignment_mode="global",
            )
        PipelineConfig(phmm_kernel="wavefront", phmm_dtype="float32")
        PipelineConfig(phmm_kernel="wavefront", alignment_mode="global")

    def test_band_defaults_off(self):
        cfg = PipelineConfig()
        assert cfg.band_mode == "off"
        assert not cfg.banding
        assert cfg.band_cell_fraction(62) == 1.0

    def test_band_validation(self):
        with pytest.raises(ConfigError):
            PipelineConfig(band_mode="diagonal")
        with pytest.raises(ConfigError):
            PipelineConfig(band_w=0)
        with pytest.raises(ConfigError):
            PipelineConfig(band_tolerance=1.0)
        with pytest.raises(ConfigError):
            PipelineConfig(band_tolerance=-0.1)

    def test_banding_requires_marginal_posteriors(self):
        assert PipelineConfig(band_mode="adaptive").banding
        assert not PipelineConfig(
            band_mode="adaptive", posterior_mode="viterbi"
        ).banding

    def test_band_cell_fraction(self):
        cfg = PipelineConfig(band_mode="fixed", band_w=10)
        # band of 21 diagonals over a (read_len + 2*pad)-wide window
        assert cfg.band_cell_fraction(62) == pytest.approx(21 / 78)
        # a band wider than the window means no savings, never > 1
        assert PipelineConfig(
            band_mode="fixed", band_w=1000
        ).band_cell_fraction(62) == 1.0

    def test_subconfigs_carried(self):
        from repro.calling.caller import CallerConfig
        from repro.index.seeding import SeederConfig

        cfg = PipelineConfig(
            seeder=SeederConfig(min_support=3),
            caller=CallerConfig(alpha=0.01),
        )
        assert cfg.seeder.min_support == 3
        assert cfg.caller.alpha == 0.01


class TestParallelConfig:
    def test_defaults(self):
        par = PipelineConfig().parallel
        assert par.workers == 1
        assert par.start_method == "spawn"
        assert par.chunk_timeout == 120.0
        assert par.max_retries == 2
        assert par.chunks_per_worker == 4
        assert par.fault_spec == ""
        # The 2.0 defaults: warm pool over shared-memory segments, chunk
        # granularity autotuned.
        assert par.persistent
        assert par.shared_memory
        assert par.autotune_chunks

    def test_validation(self):
        with pytest.raises(ConfigError):
            ParallelConfig(workers=0)
        with pytest.raises(ConfigError):
            ParallelConfig(start_method="thread")
        with pytest.raises(ConfigError):
            ParallelConfig(chunk_timeout=0.0)
        with pytest.raises(ConfigError):
            ParallelConfig(max_retries=-1)
        with pytest.raises(ConfigError):
            ParallelConfig(backoff_base=-0.1)
        with pytest.raises(ConfigError):
            ParallelConfig(chunks_per_worker=0)
        # A malformed fault spec fails at config time, not mid-run.
        with pytest.raises(ConfigError):
            ParallelConfig(fault_spec="segfault:chunk=0")

    def test_nested_carried(self):
        cfg = PipelineConfig(
            parallel=ParallelConfig(workers=4, start_method="fork")
        )
        assert cfg.parallel.workers == 4
        assert cfg.parallel.start_method == "fork"


class TestDeprecatedFlatKnobs:
    """The six 1.x flat ``mp_*`` knobs stay usable for one release, folding
    into the nested ``parallel`` config behind a DeprecationWarning."""

    def test_legacy_kwargs_warn_and_fold(self):
        with pytest.warns(DeprecationWarning, match="parallel.chunk_timeout"):
            cfg = PipelineConfig(mp_chunk_timeout=5.0)
        assert cfg.parallel.chunk_timeout == 5.0
        with pytest.warns(DeprecationWarning, match="parallel.start_method"):
            cfg = PipelineConfig(mp_start_method="fork")
        assert cfg.parallel.start_method == "fork"
        with pytest.warns(DeprecationWarning):
            cfg = PipelineConfig(
                mp_max_retries=1, mp_backoff_base=0.01,
                mp_chunks_per_worker=2, mp_fault_spec="crash:chunk=0",
            )
        assert cfg.parallel.max_retries == 1
        assert cfg.parallel.backoff_base == 0.01
        assert cfg.parallel.chunks_per_worker == 2
        assert cfg.parallel.fault_spec == "crash:chunk=0"

    def test_legacy_kwarg_still_validates(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ConfigError):
                PipelineConfig(mp_start_method="thread")

    def test_legacy_reads_warn_and_forward(self):
        cfg = PipelineConfig(parallel=ParallelConfig(chunk_timeout=7.0))
        with pytest.warns(DeprecationWarning, match="parallel.chunk_timeout"):
            assert cfg.mp_chunk_timeout == 7.0
        with pytest.warns(DeprecationWarning):
            assert cfg.mp_start_method == "spawn"

    def test_new_spelling_stays_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            cfg = PipelineConfig(parallel=ParallelConfig(workers=2))
            assert cfg.parallel.workers == 2
            assert cfg.parallel.chunk_timeout == 120.0


class TestSeederKnobs:
    def test_seed_len_must_exceed_k(self):
        from repro.index.seeding import SeederConfig

        with pytest.raises(ConfigError, match="seed_len"):
            PipelineConfig(k=10, seeder=SeederConfig(seed_len=10))
        with pytest.raises(ConfigError, match="seed_len"):
            PipelineConfig(k=12, seeder=SeederConfig(seed_len=11))

    def test_valid_seed_len_accepted(self):
        from repro.index.seeding import SeederConfig

        cfg = PipelineConfig(k=10, seeder=SeederConfig(seed_len=20))
        assert cfg.seeder.seed_len == 20

    def test_filter_knobs_validated_at_source(self):
        from repro.errors import IndexError_
        from repro.index.seeding import SeederConfig

        with pytest.raises(IndexError_):
            SeederConfig(filter_threshold=1.5)
        with pytest.raises(IndexError_):
            SeederConfig(qgram_q=0)
