"""Tests for the paired-end pipeline (insert-aware weighting)."""

import numpy as np
import pytest

from repro.errors import PipelineError
from repro.evaluation.metrics import compare_to_truth
from repro.genome.variants import Variant, VariantCatalog, apply_variants
from repro.pipeline.config import PipelineConfig
from repro.pipeline.paired import PairedConfig, PairedGnumap
from repro.simulate.error_model import IlluminaErrorModel
from repro.simulate.genome_sim import GenomeSpec, simulate_genome
from repro.simulate.paired import PairedReadSimSpec, PairedReadSimulator


def paired_workload(length=15_000, n_snps=10, seed=1, coverage=12.0,
                    n_repeats=0, repeat_length=0, repeat_divergence=0.0,
                    insert_mean=250.0):
    ref, repeats = simulate_genome(
        GenomeSpec(length=length, n_repeats=n_repeats,
                   repeat_length=repeat_length,
                   repeat_divergence=repeat_divergence),
        seed=seed,
    )
    if n_snps:
        from repro.genome.variants import generate_snp_catalog

        catalog = generate_snp_catalog(ref, n_snps, seed=seed + 1, min_margin=62)
    else:
        catalog = VariantCatalog()
    (hap,) = apply_variants(ref, catalog)
    pairs = PairedReadSimulator(
        [hap],
        PairedReadSimSpec(read_length=62, coverage=coverage,
                          insert_mean=insert_mean, insert_sd=25.0),
        seed=seed + 2,
    ).simulate()
    # the pipeline's insert prior must describe the library prep
    paired_cfg = PairedConfig(insert_mean=insert_mean, insert_sd=25.0)
    return ref, catalog, pairs, repeats, paired_cfg


class TestPairedConfig:
    def test_validation(self):
        with pytest.raises(PipelineError):
            PairedConfig(insert_mean=0)
        with pytest.raises(PipelineError):
            PairedConfig(discordant_logpenalty=1.0)

    def test_insert_logpdf_peaks_at_mean(self):
        cfg = PairedConfig(insert_mean=300, insert_sd=30)
        vals = cfg.insert_logpdf(np.array([200.0, 300.0, 400.0]))
        assert vals[1] > vals[0] and vals[1] > vals[2]


class TestPairedPipeline:
    def test_finds_planted_snps(self):
        ref, catalog, pairs, _, pcfg = paired_workload(seed=11)
        result = PairedGnumap(ref, PipelineConfig(), pcfg).run(pairs)
        counts = compare_to_truth(result.snps, catalog)
        assert counts.precision >= 0.9
        assert counts.recall >= 0.7
        assert result.stats.n_mapped > 0.9 * result.stats.n_reads

    def test_no_false_calls_on_clean_genome(self):
        ref, _, pairs, _, pcfg = paired_workload(n_snps=0, seed=12, coverage=8.0)
        result = PairedGnumap(ref, PipelineConfig(), pcfg).run(pairs)
        assert result.snps == []

    def test_depth_tracks_coverage(self):
        ref, _, pairs, _, pcfg = paired_workload(n_snps=0, seed=13, coverage=10.0)
        paired = PairedGnumap(ref, PipelineConfig(), pcfg)
        acc, _ = paired.map_pairs(pairs)
        depth = acc.total_depth()
        interior = depth[300:-300]
        assert abs(np.median(interior) - 10.0) < 4.0

    def test_discordant_pairs_still_contribute(self):
        """A pair whose mates cannot be concordantly placed (we fake it by
        using mates from distant fragments) still deposits evidence via the
        singleton fallback."""
        from repro.simulate.paired import ReadPair

        ref, _, pairs, _, pcfg = paired_workload(n_snps=0, seed=14, coverage=4.0)
        frankenstein = ReadPair(
            read1=pairs[0].read1,
            read2=pairs[-1].read2,
            fragment_start=pairs[0].fragment_start,
            insert_size=10**6,
        )
        paired = PairedGnumap(ref, PipelineConfig(), pcfg)
        acc, stats = paired.map_pairs([frankenstein])
        assert stats.n_mapped == 2
        assert acc.total_depth().sum() > 60  # both mates deposited


class TestRepeatDisambiguation:
    def test_pairing_concentrates_weight_on_true_copy(self):
        """The paired pipeline's reason to exist: a SNP inside an *exact*
        repeat is 50/50-ambiguous for single-end reads, but a mate anchored
        in unique flanking sequence pins the fragment, so the paired caller
        assigns the variant to the true copy (and calls it homozygous there,
        rather than a phantom het at both copies)."""
        ref, _, _, repeats, pcfg = paired_workload(
            length=30_000, n_snps=0, seed=15,
            n_repeats=1, repeat_length=300, repeat_divergence=0.0,
            insert_mean=450.0,
        )
        rep = repeats[0]
        pos = rep.src_start + 150
        copy_pos = rep.copy_start + 150
        alt = (int(ref.codes[pos]) + 1) % 4
        catalog = VariantCatalog([Variant(pos, int(ref.codes[pos]), alt)])
        (hap,) = apply_variants(ref, catalog)
        pairs = PairedReadSimulator(
            [hap],
            PairedReadSimSpec(read_length=62, coverage=20.0,
                              insert_mean=450.0, insert_sd=25.0,
                              error_model=IlluminaErrorModel()),
            seed=16,
        ).simulate()

        result = PairedGnumap(ref, PipelineConfig(), pcfg).run(pairs)
        z = result.accumulator.snapshot()
        true_alt_mass = z[pos, alt]
        copy_alt_mass = z[copy_pos, alt]
        # pairing concentrates the alt evidence on the true copy
        assert true_alt_mass > 2.0 * copy_alt_mass, (true_alt_mass, copy_alt_mass)
        called = {s.pos for s in result.snps}
        assert pos in called
