"""Tests for the two MPI-mode programs against the serial pipeline."""

import numpy as np
import pytest

from repro.experiments.workload import build_workload
from repro.parallel.cluster import Cluster
from repro.parallel.costmodel import LogGPModel
from repro.pipeline.calibration import ComputeCalibration
from repro.pipeline.config import PipelineConfig
from repro.pipeline.gnumap import GnumapSnp
from repro.pipeline.parallel_driver import run_memory_spread, run_read_spread


@pytest.fixture(scope="module")
def workload():
    return build_workload(scale="tiny", seed=77)


@pytest.fixture(scope="module")
def config():
    return PipelineConfig()


@pytest.fixture(scope="module")
def serial_snps(workload, config):
    result = GnumapSnp(workload.reference, config).run(workload.reads)
    return {(s.pos, s.alt_name) for s in result.snps}


class TestReadSpread:
    @pytest.mark.parametrize("n_ranks", [1, 2, 5])
    def test_matches_serial(self, workload, config, serial_snps, n_ranks):
        res = Cluster(n_ranks).run(
            run_read_spread, workload.reference, workload.reads, config
        )
        out = res.results[0]
        assert {(s.pos, s.alt_name) for s in out.snps} == serial_snps
        assert out.stats.n_reads == workload.n_reads
        # non-root ranks return empty results
        for other in res.results[1:]:
            assert other.snps is None

    def test_virtual_speedup_with_calibration(self, workload, config):
        calib = ComputeCalibration.measure(
            workload.reference, workload.reads[:150], config
        )
        cost = LogGPModel()
        t1 = Cluster(1, cost).run(
            run_read_spread, workload.reference, workload.reads, config, calib
        ).makespan
        t4 = Cluster(4, cost).run(
            run_read_spread, workload.reference, workload.reads, config, calib
        ).makespan
        speedup = t1 / t4
        assert 2.0 < speedup <= 4.5


class TestMemorySpread:
    @pytest.mark.parametrize("n_ranks", [2, 3])
    def test_matches_serial(self, workload, config, serial_snps, n_ranks):
        res = Cluster(n_ranks).run(
            run_memory_spread, workload.reference, workload.reads, config
        )
        out = res.results[0]
        assert {(s.pos, s.alt_name) for s in out.snps} == serial_snps

    def test_snps_sorted_by_position(self, workload, config):
        res = Cluster(3).run(
            run_memory_spread, workload.reference, workload.reads, config
        )
        positions = [s.pos for s in res.results[0].snps]
        assert positions == sorted(positions)

    def test_scales_worse_than_read_spread(self, workload, config):
        calib = ComputeCalibration.measure(
            workload.reference, workload.reads[:150], config
        )
        cost = LogGPModel()
        p = 4
        rs = Cluster(p, cost).run(
            run_read_spread, workload.reference, workload.reads, config, calib
        ).makespan
        ms = Cluster(p, cost).run(
            run_memory_spread, workload.reference, workload.reads, config, calib
        ).makespan
        assert ms > rs  # Fig 4's conclusion

    def test_single_rank_degenerates_to_serial(self, workload, config, serial_snps):
        res = Cluster(1).run(
            run_memory_spread, workload.reference, workload.reads, config
        )
        got = {(s.pos, s.alt_name) for s in res.results[0].snps}
        assert got == serial_snps


class TestHybrid:
    @pytest.mark.parametrize("n_ranks,n_groups", [(4, 2), (6, 3), (4, 1), (2, 2)])
    def test_matches_serial(self, workload, config, serial_snps, n_ranks, n_groups):
        from repro.pipeline.parallel_driver import run_hybrid

        res = Cluster(n_ranks).run(
            run_hybrid, workload.reference, workload.reads, config, None, n_groups
        )
        got = {(s.pos, s.alt_name) for s in res.results[0].snps}
        assert got == serial_snps

    def test_indivisible_world_rejected(self, workload, config):
        from repro.errors import CommError
        from repro.pipeline.parallel_driver import run_hybrid

        with pytest.raises(CommError):
            Cluster(5, timeout=10.0).run(
                run_hybrid, workload.reference, workload.reads, config, None, 2
            )

    def test_hybrid_seeds_less_than_memory_spread(self, workload, config):
        """The hybrid mode's point: per-rank seeding work drops by the group
        size, so its calibrated makespan beats pure memory-spread at equal
        rank count."""
        calib = ComputeCalibration.measure(
            workload.reference, workload.reads[:150], config
        )
        from repro.pipeline.parallel_driver import run_hybrid

        cost = LogGPModel()
        ms = Cluster(4, cost).run(
            run_memory_spread, workload.reference, workload.reads, config, calib
        ).makespan
        hy = Cluster(4, cost).run(
            run_hybrid, workload.reference, workload.reads, config, calib, 2
        ).makespan
        assert hy < ms


class TestEvidenceEquivalence:
    def test_read_spread_accumulator_bitwise_close(self, workload, config):
        serial = GnumapSnp(workload.reference, config)
        serial_acc, _ = serial.map_reads(workload.reads)

        def program(comm):
            from repro.parallel.partition import partition_reads_contiguous, take
            from repro.parallel.reduction import reduce_accumulator

            pipe = GnumapSnp(workload.reference, config)
            sl = partition_reads_contiguous(len(workload.reads), comm.size)[comm.rank]
            acc, _ = pipe.map_reads(take(workload.reads, sl))
            return reduce_accumulator(comm, acc)

        res = Cluster(3).run(program)
        merged = res.results[0]
        assert np.allclose(merged.snapshot(), serial_acc.snapshot(), atol=1e-3)
