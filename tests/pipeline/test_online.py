"""Tests for online (streaming) SNP calling."""

import numpy as np
import pytest

from repro.errors import PipelineError
from repro.experiments.workload import build_workload
from repro.pipeline.config import ParallelConfig, PipelineConfig
from repro.pipeline.gnumap import GnumapSnp
from repro.pipeline.online import OnlineGnumap


@pytest.fixture(scope="module")
def workload():
    return build_workload(scale="tiny", seed=303)


def chunks(reads, n):
    size = (len(reads) + n - 1) // n
    return [reads[i : i + size] for i in range(0, len(reads), size)]


class TestOnlineGnumap:
    def test_final_state_equals_batch_run(self, workload):
        online = OnlineGnumap(workload.reference, PipelineConfig())
        for chunk in chunks(workload.reads, 5):
            online.feed(chunk)
        batch = GnumapSnp(workload.reference, PipelineConfig()).run(workload.reads)
        assert {(s.pos, s.alt_name) for s in online.current_snps()} == {
            (s.pos, s.alt_name) for s in batch.snps
        }
        assert np.allclose(
            online.accumulator.snapshot(), batch.accumulator.snapshot(), atol=1e-3
        )
        assert online.stats.n_reads == workload.n_reads

    def test_call_count_grows_with_evidence(self, workload):
        online = OnlineGnumap(workload.reference, PipelineConfig())
        for chunk in chunks(workload.reads, 6):
            online.feed(chunk)
        history = online.history()
        assert len(history) == 6
        # more evidence, more callable sites (allowing small fluctuations)
        assert history[-1] >= history[0]
        assert history[-1] > 0

    def test_watch_events_fire_once_per_transition(self, workload):
        online = OnlineGnumap(workload.reference, PipelineConfig())
        truth_positions = workload.catalog.positions.tolist()
        online.watch(truth_positions)
        all_events = []
        for chunk in chunks(workload.reads, 6):
            report = online.feed(chunk)
            all_events.extend(report.events)
        called_finally = {s.pos for s in online.current_snps()}
        fired = {e.pos for e in all_events if e.now_called}
        # every finally-called watched SNP fired a now_called event
        assert called_finally & set(truth_positions) <= fired

    def test_watch_validation(self, workload):
        online = OnlineGnumap(workload.reference, PipelineConfig())
        with pytest.raises(PipelineError):
            online.watch([10**9])

    def test_coverage_summary(self, workload):
        online = OnlineGnumap(workload.reference, PipelineConfig())
        online.feed(workload.reads[:200])
        summary = online.coverage_summary()
        assert summary["mean"] > 0
        assert summary["max"] >= summary["median"] >= 0
        assert 0 <= summary["positions_above_min_depth"] <= len(workload.reference)

    def test_empty_chunk_is_noop(self, workload):
        online = OnlineGnumap(workload.reference, PipelineConfig())
        report = online.feed([])
        assert report.n_reads == 0
        assert report.n_snps_now == 0


class TestOnlineParallelFeed:
    def test_workers_validation(self, workload):
        with pytest.raises(PipelineError):
            OnlineGnumap(workload.reference, workers=0)

    def test_parallel_feed_matches_serial_stream(self, workload):
        # fork keeps the per-chunk worker spawns cheap; the dispatcher
        # itself is start-method-agnostic (tests/pipeline/test_mp_backend).
        config = PipelineConfig(parallel=ParallelConfig(start_method="fork"))
        serial = OnlineGnumap(workload.reference, PipelineConfig())
        parallel = OnlineGnumap(workload.reference, config, workers=2)
        for chunk in chunks(workload.reads[:200], 2):
            serial.feed(chunk)
            parallel.feed(chunk)
        assert {(s.pos, s.alt_name) for s in parallel.current_snps()} == {
            (s.pos, s.alt_name) for s in serial.current_snps()
        }
        assert np.allclose(
            parallel.accumulator.snapshot(),
            serial.accumulator.snapshot(),
            atol=1e-3,
        )
        assert parallel.stats.n_reads == serial.stats.n_reads == 200

    def test_parallel_feed_survives_injected_crash(self, workload):
        # A fed chunk with a crashing worker still lands: the stream keeps
        # going, evidence is identical to an unfaulted parallel stream.
        config = PipelineConfig(parallel=ParallelConfig(
            start_method="fork", fault_spec="crash:chunk=0"
        ))
        clean = OnlineGnumap(
            workload.reference,
            PipelineConfig(parallel=ParallelConfig(start_method="fork")),
            workers=2,
        )
        faulted = OnlineGnumap(workload.reference, config, workers=2)
        clean.feed(workload.reads[:120])
        faulted.feed(workload.reads[:120])
        assert np.array_equal(
            faulted.accumulator.snapshot(), clean.accumulator.snapshot()
        )
