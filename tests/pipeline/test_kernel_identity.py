"""Kernel families are interchangeable at the SNP-call level.

The tentpole promise of the wavefront kernels is that threading them
through the pipeline is *observationally free* in float64: the DP kernels
differ in sweep order and scaling strategy, but the SNP calls — position,
reference and alternate allele — come out identical.  The float32 fast
path promises the same calls via its escalation contract.  These tests pin
both promises end to end on the tiny deterministic workload.
"""

import numpy as np
import pytest

from repro.experiments.workload import build_workload
from repro.pipeline.config import PipelineConfig
from repro.pipeline.gnumap import GnumapSnp

N_READS = 600  # subset of the tiny workload: enough to call SNPs, fast


@pytest.fixture(scope="module")
def workload():
    return build_workload(scale="tiny", seed=2012)


def _run(workload, **cfg_kwargs):
    cfg = PipelineConfig(**cfg_kwargs)
    result = GnumapSnp(workload.reference, cfg).run(workload.reads[:N_READS])
    calls = [(s.pos, s.ref_name, s.alt_name) for s in result.snps]
    return calls, result


@pytest.fixture(scope="module")
def rowsweep_full(workload):
    return _run(workload, phmm_kernel="rowsweep")


def test_wavefront_float64_calls_identical_full(workload, rowsweep_full):
    base_calls, base = rowsweep_full
    calls, result = _run(workload, phmm_kernel="wavefront")
    assert len(base_calls) > 0
    assert calls == base_calls
    # evidence accumulators agree to rounding (the kernels' scalings
    # differ in association order, not in math)
    np.testing.assert_allclose(
        result.accumulator.snapshot(),
        base.accumulator.snapshot(),
        rtol=1e-9,
        atol=1e-12,
    )


def test_wavefront_float64_calls_identical_banded(workload, rowsweep_full):
    base_calls, _ = rowsweep_full
    calls, _ = _run(
        workload, phmm_kernel="wavefront", band_mode="adaptive"
    )
    assert calls == base_calls


def test_wavefront_float32_calls_identical(workload, rowsweep_full):
    base_calls, _ = rowsweep_full
    calls, _ = _run(
        workload, phmm_kernel="wavefront", phmm_dtype="float32"
    )
    assert calls == base_calls
