"""End-to-end telemetry plane: live endpoint during a pool run, and the
byte-identity contract (SNP calls and accumulator state are identical with
telemetry on or off — the live plane never touches the result path).

Fork start method keeps the repeated worker spawns cheap, matching the
rest of the mp test suite; the sideband is start-method-agnostic (the
telemetry pipe rides the same Process args as the command pipe).
"""

from __future__ import annotations

import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.experiments.workload import build_workload
from repro.genome.reference import Reference
from repro.observability import parse_exposition
from repro.pipeline.config import (
    ParallelConfig,
    PipelineConfig,
    TelemetryConfig,
)


@pytest.fixture(scope="module")
def workload():
    wl = build_workload(scale="tiny", seed=31)
    wl.reads = wl.reads[:250]
    return wl


def _config(telemetry: bool, **tele_kwargs) -> PipelineConfig:
    return PipelineConfig(
        parallel=ParallelConfig(workers=2, start_method="fork"),
        telemetry=TelemetryConfig(enabled=telemetry, **tele_kwargs),
    )


def _engine(workload, config):
    from repro.api import Engine

    return Engine(
        Reference(workload.reference.codes, name=workload.reference.name),
        config,
    )


class TestTelemetryConfig:
    def test_defaults_off(self):
        cfg = PipelineConfig()
        assert not cfg.telemetry.enabled
        assert cfg.telemetry.interval == 1.0
        assert cfg.telemetry.stall_after == 5.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            TelemetryConfig(interval=0.0)
        with pytest.raises(ConfigError):
            TelemetryConfig(stall_after=-1.0)
        with pytest.raises(ConfigError):
            TelemetryConfig(port=70000)
        with pytest.raises(ConfigError):
            TelemetryConfig(port=-1)
        assert TelemetryConfig(port=None).port is None


class TestEngineLifecycle:
    def test_disabled_engine_has_no_telemetry(self, workload):
        with _engine(workload, _config(False)) as engine:
            assert engine.telemetry is None
            assert engine.telemetry_url is None

    def test_enabled_engine_serves_before_first_run(self, workload):
        with _engine(workload, _config(True, interval=0.1)) as engine:
            url = engine.telemetry_url
            assert url is not None and url.endswith("/metrics")
            with urllib.request.urlopen(url, timeout=5) as resp:
                parse_exposition(resp.read().decode("utf-8"))

    def test_port_none_keeps_aggregator_without_endpoint(self, workload):
        with _engine(workload, _config(True, port=None)) as engine:
            assert engine.telemetry is not None
            assert engine.telemetry_url is None

    def test_close_tears_down_and_reuse_rebuilds(self, workload):
        engine = _engine(workload, _config(True, interval=0.1))
        first_url = engine.telemetry_url
        engine.close()
        assert engine.telemetry_url is None
        with pytest.raises((OSError, urllib.error.URLError)):
            urllib.request.urlopen(first_url, timeout=1)
        # The engine stays usable: the next parallel run builds a fresh
        # pool, aggregator and endpoint.
        result = engine.run(workload.reads[:50])
        assert engine.telemetry_url is not None
        assert result.stats.n_reads == 50
        engine.close()


class TestLiveScrapeDuringRun:
    def test_endpoint_updates_across_a_pool_run(self, workload):
        """The scrape is live: before the run it shows no pipeline reads;
        after the run (workers published their final deltas) it does, with
        per-worker heartbeat series present — the CI smoke contract."""
        with _engine(workload, _config(True, interval=0.05)) as engine:
            url = engine.telemetry_url

            def scrape():
                with urllib.request.urlopen(url, timeout=5) as resp:
                    return parse_exposition(resp.read().decode("utf-8"))

            before = scrape()
            assert before.value("pipeline_reads_total") is None
            engine.run(workload.reads)
            deadline = time.monotonic() + 10.0
            exp = scrape()
            while (
                time.monotonic() < deadline
                and (exp.value("pipeline_reads_total") or 0) < len(workload.reads)
            ):
                time.sleep(0.05)
                exp = scrape()
            assert exp.value("pipeline_reads_total") == len(workload.reads)
            workers = exp.series("mp_worker_heartbeat_age_seconds")
            assert len(workers) == 2
            assert exp.value("mp_workers") == 2
            assert (exp.value("obs_telemetry_deltas_total") or 0) > 0


class TestByteIdentity:
    def test_calls_identical_with_telemetry_on_and_off(self, workload):
        with _engine(workload, _config(False)) as engine_off:
            off = engine_off.run(workload.reads)
        with _engine(workload, _config(True, interval=0.05)) as engine_on:
            on = engine_on.run(workload.reads)
        assert [
            (s.pos, s.ref_name, s.alt_name, s.call.pvalue) for s in on.snps
        ] == [
            (s.pos, s.ref_name, s.alt_name, s.call.pvalue) for s in off.snps
        ]
        assert np.array_equal(
            on.accumulator.snapshot(), off.accumulator.snapshot()
        )
        assert on.stats.n_reads == off.stats.n_reads
