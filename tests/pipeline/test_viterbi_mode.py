"""Tests for the single-best-alignment (Viterbi) ablation mode."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.evaluation.metrics import compare_to_truth
from repro.experiments.workload import build_workload
from repro.pipeline.config import PipelineConfig
from repro.pipeline.gnumap import GnumapSnp, _one_hot_best


@pytest.fixture(scope="module")
def workload():
    return build_workload(scale="tiny", seed=606)


class TestOneHotBest:
    def test_per_group_single_winner(self):
        logliks = np.array([-3.0, -1.0, -2.0, -9.0, -8.0])
        groups = np.array([0, 0, 0, 1, 1])
        w = _one_hot_best(logliks, groups)
        assert w.tolist() == [0, 1, 0, 0, 1]

    def test_all_impossible_group_zeroed(self):
        w = _one_hot_best(np.array([-np.inf, -np.inf]), np.array([0, 0]))
        assert w.tolist() == [0, 0]

    def test_empty(self):
        assert _one_hot_best(np.array([]), np.array([])).size == 0


class TestViterbiMode:
    def test_runs_and_calls_snps(self, workload):
        config = PipelineConfig(posterior_mode="viterbi")
        result = GnumapSnp(workload.reference, config).run(workload.reads)
        counts = compare_to_truth(result.snps, workload.catalog)
        assert counts.tp > 0
        assert counts.precision >= 0.7

    def test_evidence_is_integral_per_position(self, workload):
        # single-path evidence: each covered position gets ~1 unit per read
        config = PipelineConfig(posterior_mode="viterbi")
        pipe = GnumapSnp(workload.reference, config)
        acc, _ = pipe.map_reads(workload.reads[:100])
        depth = acc.total_depth()
        assert depth.max() > 0
        assert depth.sum() == pytest.approx(
            sum(len(r) for r in workload.reads[:100]), rel=0.2
        )

    def test_both_modes_competitive_on_clean_data(self, workload):
        """On clean, unambiguous data the two philosophies are both strong —
        Viterbi can even edge ahead because one-hot location weights keep
        full depth at one site while the marginal mode splits evidence over
        repeat copies (costing LRT power at low coverage).  The marginal
        mode's advantage is *robustness* in ambiguity, demonstrated by
        tests/test_integration.py::TestRepeatRegionSnp."""
        marginal = GnumapSnp(workload.reference, PipelineConfig()).run(workload.reads)
        viterbi = GnumapSnp(
            workload.reference, PipelineConfig(posterior_mode="viterbi")
        ).run(workload.reads)
        cm = compare_to_truth(marginal.snps, workload.catalog)
        cv = compare_to_truth(viterbi.snps, workload.catalog)
        assert cm.f1 >= 0.7
        assert cv.f1 >= 0.7

    def test_bad_mode_rejected(self):
        with pytest.raises(ConfigError):
            PipelineConfig(posterior_mode="map")
