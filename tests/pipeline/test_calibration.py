"""Tests for compute-cost calibration."""

import pytest

from repro.errors import PipelineError
from repro.experiments.workload import build_workload
from repro.pipeline.calibration import ComputeCalibration


@pytest.fixture(scope="module")
def workload():
    return build_workload(scale="tiny", seed=55)


class TestComputeCalibration:
    def test_measure_produces_positive_costs(self, workload):
        calib = ComputeCalibration.measure(workload.reference, workload.reads[:150])
        assert calib.seconds_per_seed > 0
        assert calib.seconds_per_pair > 0
        assert calib.pairs_per_read >= 1.0
        assert calib.seconds_per_index_base > 0
        assert calib.seconds_per_called_position > 0

    def test_mapping_seconds_composition(self):
        calib = ComputeCalibration(
            seconds_per_seed=1e-3,
            seconds_per_pair=2e-3,
            pairs_per_read=1.5,
            seconds_per_index_base=1e-7,
            seconds_per_called_position=1e-7,
        )
        assert calib.mapping_seconds(100, 200) == pytest.approx(0.1 + 0.4)
        # falls back to the calibrated candidate rate
        assert calib.mapping_seconds(100) == pytest.approx(0.1 + 150 * 2e-3)
        assert calib.seconds_per_read == pytest.approx(1e-3 + 1.5 * 2e-3)

    def test_index_and_calling_charges(self):
        calib = ComputeCalibration(1e-3, 1e-3, 1.0, 2e-7, 3e-7)
        assert calib.index_seconds(10**6) == pytest.approx(0.2)
        assert calib.calling_seconds(10**6) == pytest.approx(0.3)

    def test_empty_reads_rejected(self, workload):
        with pytest.raises(PipelineError):
            ComputeCalibration.measure(workload.reference, [])

    def test_negative_costs_rejected(self):
        with pytest.raises(PipelineError):
            ComputeCalibration(-1e-3, 1e-3, 1.0, 1e-7, 1e-7)
