"""End-to-end flight-recorder integration: workers, faults, export.

The load-bearing claim: a fault-injected parallel run's trace contains
worker-lane events carried home from *spawned* processes (the hard
transport case — no state inheritance), the recovery instants agree with
the recovery counters, and the export is valid Chrome trace JSON with at
least two worker lanes.
"""

import json
import multiprocessing as mp
import os

import pytest

import repro.observability.trace as trace
from repro.experiments.workload import build_workload
from repro.observability import scope, to_chrome_trace
from repro.pipeline.config import ParallelConfig, PipelineConfig
from repro.pipeline.gnumap import GnumapSnp
from repro.pipeline.mp_backend import run_multiprocessing


@pytest.fixture(scope="module")
def workload():
    wl = build_workload(scale="tiny", seed=31)
    wl.reads = wl.reads[:250]
    return wl


@pytest.fixture(autouse=True)
def traced():
    was_enabled = trace.enabled()
    trace.enable()
    yield
    if not was_enabled:
        trace.disable()


def run_traced(workload, **parallel_kwargs):
    config = PipelineConfig(parallel=ParallelConfig(**parallel_kwargs))
    with scope() as reg:
        result = run_multiprocessing(
            workload.reference, workload.reads, config, n_workers=2
        )
        return result, reg.snapshot()


class TestFaultInjectedTrace:
    @pytest.fixture(scope="class")
    def crash_run(self, workload):
        if "spawn" not in mp.get_all_start_methods():  # pragma: no cover
            pytest.skip("spawn start method unavailable")
        trace.enable()
        try:
            # chunks = workers * chunks_per_worker = 4; chunk 3 crashes on
            # attempt 0 only, so one death + one retry, deterministically.
            # Crashing the *last* chunk (not chunk 0) guarantees both
            # original workers complete at least one chunk first, so the
            # trace always carries >=2 worker lanes.
            return run_traced(
                workload,
                start_method="spawn",
                fault_spec="crash:chunk=3",
                chunks_per_worker=2,
                backoff_base=0.01,
            )
        finally:
            trace.disable()

    def test_counters_match_instants(self, crash_run):
        _, snap = crash_run
        assert snap.counter("mp.worker_deaths") == 1
        assert snap.counter("mp.chunk_retries") == 1
        assert len(snap.instants("mp.worker_death")) == 1
        assert len(snap.instants("mp.chunk_retry")) == 1
        (death,) = snap.instants("mp.worker_death")
        assert death[7]["chunk"] == 3 and death[7]["attempt"] == 0

    def test_worker_lanes_present_from_spawned_processes(self, crash_run):
        _, snap = crash_run
        worker_pids = {
            ev[3] for ev in snap.events if ev[4] == "worker"
        }
        assert len(worker_pids) >= 2, "expected >=2 worker lanes"
        assert os.getpid() not in worker_pids
        # Worker-side chunk instants made the pickle round trip home.
        begins = snap.instants("mp.chunk_begin")
        assert {ev[7]["chunk"] for ev in begins} >= {0, 1, 2, 3}

    def test_chunk_latency_histogram_recorded(self, crash_run):
        _, snap = crash_run
        hist = snap.histogram("mp.chunk_map_seconds")
        assert hist is not None and hist["count"] >= 4
        assert snap.histogram_quantile("mp.chunk_map_seconds", 0.99) > 0

    def test_chrome_export_loads_with_worker_lanes(self, crash_run):
        _, snap = crash_run
        doc = json.loads(json.dumps(to_chrome_trace(snap)))
        worker_lanes = [
            ev for ev in doc["traceEvents"]
            if ev["ph"] == "M" and ev["name"] == "process_name"
            and ev["args"]["name"].startswith("worker")
        ]
        assert len(worker_lanes) >= 2
        names = {ev["name"] for ev in doc["traceEvents"]}
        assert {"mp.worker_death", "mp.chunk_retry", "map_reads"} <= names

    def test_faulted_run_output_matches_serial(self, crash_run, workload):
        result, _ = crash_run
        serial = GnumapSnp(workload.reference, PipelineConfig()).run(
            workload.reads
        )
        assert {(s.pos, s.alt_name) for s in result.snps} == {
            (s.pos, s.alt_name) for s in serial.snps
        }


class TestCleanParallelTrace:
    def test_span_pairs_balance_per_lane(self, workload):
        result, snap = run_traced(workload, start_method="fork")
        assert result.stats.n_reads == len(workload.reads)
        for pid, tid in {(ev[3], ev[5]) for ev in snap.events}:
            lane = [ev for ev in snap.events if (ev[3], ev[5]) == (pid, tid)]
            begins = sum(1 for ev in lane if ev[1] == "B")
            ends = sum(1 for ev in lane if ev[1] == "E")
            assert begins == ends, f"unbalanced span pairs in lane {pid}/{tid}"

    def test_mapping_weight_histogram_flows_back(self, workload):
        _, snap = run_traced(workload, start_method="fork")
        hist = snap.histogram("pipeline.mapping_weight")
        assert hist is not None and hist["count"] > 0
