"""Tests for the text-table formatter."""

import pytest

from repro.util.tables import format_table


class TestFormatTable:
    def test_basic_layout(self):
        out = format_table(["a", "bb"], [[1, 2.5], ["x", 3]])
        lines = out.splitlines()
        assert len(lines) == 4  # header, separator, 2 rows
        assert "a" in lines[0] and "bb" in lines[0]

    def test_title_prepended(self):
        out = format_table(["c"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_float_rendering(self):
        out = format_table(["v"], [[0.123456], [12345.6], [0.0001], [0.0]])
        assert "0.123" in out
        assert "1.23e+04" in out or "12345" in out or "1.23e4" in out
        assert "0.0001" in out
        # exact zero renders as a plain 0
        assert "\n0" in out or " 0" in out

    def test_empty_rows_ok(self):
        out = format_table(["x", "y"], [])
        assert "x" in out and "y" in out

    def test_columns_aligned(self):
        out = format_table(["col", "n"], [["aaa", 1], ["b", 22]])
        lines = out.splitlines()
        # the separator line has the full width of the widest row
        assert len(lines[1]) == len(lines[2])
