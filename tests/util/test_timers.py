"""Tests for stage timers."""

import pytest

from repro.util.timers import StageTimer, TimerRegistry


class TestStageTimer:
    def test_accumulates_over_entries(self):
        t = StageTimer("x")
        with t:
            pass
        with t:
            pass
        assert t.entries == 2
        assert t.elapsed >= 0

    def test_reentrancy_rejected(self):
        t = StageTimer("x")
        with pytest.raises(RuntimeError):
            with t:
                t.__enter__()

    def test_add_external_time(self):
        t = StageTimer("x")
        t.add(1.5)
        t.add(0.5)
        assert t.elapsed == pytest.approx(2.0)
        assert t.entries == 2

    def test_add_negative_rejected(self):
        with pytest.raises(ValueError):
            StageTimer("x").add(-1)


class TestTimerRegistry:
    def test_autocreates_and_reuses(self):
        reg = TimerRegistry()
        t1 = reg["align"]
        t2 = reg["align"]
        assert t1 is t2
        assert "align" in reg

    def test_total_sums_stages(self):
        reg = TimerRegistry()
        reg["a"].add(1.0)
        reg["b"].add(2.0)
        assert reg.total() == pytest.approx(3.0)
        assert reg.as_dict() == {"a": 1.0, "b": 2.0}

    def test_report_mentions_all_stages(self):
        reg = TimerRegistry()
        reg["seed"].add(0.25)
        reg["align"].add(0.5)
        report = reg.report()
        assert "seed" in report and "align" in report and "TOTAL" in report

    def test_empty_report(self):
        assert "no stages" in TimerRegistry().report()
