"""Tests for deterministic RNG plumbing."""

import numpy as np
import pytest

from repro.util.rng import children, resolve_rng, spawn_child


class TestResolveRng:
    def test_int_seed_is_deterministic(self):
        a = resolve_rng(42).integers(0, 1 << 30, 10)
        b = resolve_rng(42).integers(0, 1 << 30, 10)
        assert (a == b).all()

    def test_different_seeds_differ(self):
        a = resolve_rng(1).integers(0, 1 << 30, 10)
        b = resolve_rng(2).integers(0, 1 << 30, 10)
        assert (a != b).any()

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert resolve_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(resolve_rng(None), np.random.Generator)


class TestSpawnChild:
    def test_children_independent_of_sibling_count(self):
        # child i is a function of parent state + index only
        a = spawn_child(resolve_rng(7), 3).integers(0, 1 << 30, 5)
        b = spawn_child(resolve_rng(7), 3).integers(0, 1 << 30, 5)
        assert (a == b).all()

    def test_distinct_indices_distinct_streams(self):
        parent = resolve_rng(7)
        s0 = spawn_child(parent, 0)
        parent2 = resolve_rng(7)
        s1 = spawn_child(parent2, 1)
        assert (s0.integers(0, 1 << 30, 8) != s1.integers(0, 1 << 30, 8)).any()

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            spawn_child(resolve_rng(0), -1)


class TestChildren:
    def test_stable_per_seed(self):
        a = [g.integers(0, 1 << 30) for g in children(5, 4)]
        b = [g.integers(0, 1 << 30) for g in children(5, 4)]
        assert a == b

    def test_count(self):
        assert len(children(0, 7)) == 7
        assert children(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            children(0, -1)
