"""Tests for the command-line interface (simulate -> call -> evaluate)."""

import pytest

from repro.cli import main


class TestSimulateCallEvaluate:
    def test_full_workflow(self, tmp_path, capsys):
        ref = tmp_path / "ref.fa"
        reads = tmp_path / "reads.fq"
        truth = tmp_path / "truth.tsv"
        out = tmp_path / "snps.tsv"

        rc = main([
            "simulate", "--scale", "tiny", "--seed", "5",
            "--reference", str(ref), "--reads", str(reads), "--truth", str(truth),
        ])
        assert rc == 0
        assert ref.exists() and reads.exists() and truth.exists()
        sim_out = capsys.readouterr().out
        assert "reference" in sim_out

        vcf = tmp_path / "calls.vcf"
        report = tmp_path / "report.md"
        rc = main([
            "call", str(ref), str(reads), "-o", str(out),
            "--vcf", str(vcf), "--report", str(report), "--verbose",
        ])
        assert rc == 0
        call_out = capsys.readouterr().out
        assert "SNP calls" in call_out
        assert out.read_text().startswith("pos\t")
        assert vcf.read_text().startswith("##fileformat=VCF")
        assert "## Summary" in report.read_text()

        rc = main(["evaluate", str(out), str(truth)])
        assert rc == 0
        eval_out = capsys.readouterr().out
        assert "precision" in eval_out and "TP" in eval_out

    def test_call_rejects_multi_record_fasta(self, tmp_path, capsys):
        ref = tmp_path / "multi.fa"
        ref.write_text(">a\nACGTACGTACGTACGT\n>b\nACGTACGTACGTACGT\n")
        reads = tmp_path / "r.fq"
        reads.write_text("@r\nACGTACGTACGT\n+\nIIIIIIIIIIII\n")
        rc = main(["call", str(ref), str(reads)])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_map_to_sam(self, tmp_path, capsys):
        ref = tmp_path / "ref.fa"
        reads = tmp_path / "reads.fq"
        sam = tmp_path / "out.sam"
        main([
            "simulate", "--scale", "tiny", "--seed", "9",
            "--reference", str(ref), "--reads", str(reads),
            "--truth", str(tmp_path / "t.tsv"),
        ])
        capsys.readouterr()
        rc = main(["map", str(ref), str(reads), "-o", str(sam)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "placed" in out
        text = sam.read_text()
        assert text.startswith("@HD")
        assert "\t60\t" in text  # confident unique placements exist

    def test_call_banded_matches_default(self, tmp_path, capsys):
        ref = tmp_path / "ref.fa"
        reads = tmp_path / "reads.fq"
        main([
            "simulate", "--scale", "tiny", "--seed", "21",
            "--reference", str(ref), "--reads", str(reads),
            "--truth", str(tmp_path / "t.tsv"),
        ])
        capsys.readouterr()
        full_out = tmp_path / "full.tsv"
        band_out = tmp_path / "band.tsv"
        assert main(["call", str(ref), str(reads), "-o", str(full_out)]) == 0
        assert main([
            "call", str(ref), str(reads), "-o", str(band_out),
            "--band-mode", "adaptive", "--band-width", "10",
            "--band-tolerance", "1e-4",
        ]) == 0
        capsys.readouterr()
        assert band_out.read_bytes() == full_out.read_bytes()

    def test_band_flags_validated(self, tmp_path, capsys):
        ref = tmp_path / "ref.fa"
        ref.write_text(">a\nACGTACGTACGTACGT\n")
        reads = tmp_path / "r.fq"
        reads.write_text("@r\nACGTACGTACGT\n+\nIIIIIIIIIIII\n")
        rc = main([
            "call", str(ref), str(reads), "-o", str(tmp_path / "o.tsv"),
            "--band-mode", "fixed", "--band-width", "0",
        ])
        assert rc == 2
        assert "band_w" in capsys.readouterr().err
        with pytest.raises(SystemExit):  # argparse rejects unknown modes
            main(["call", str(ref), str(reads), "--band-mode", "wat"])

    def test_float32_global_alignment_rejected(self, tmp_path, capsys):
        ref = tmp_path / "ref.fa"
        ref.write_text(">a\nACGTACGTACGTACGT\n")
        reads = tmp_path / "r.fq"
        reads.write_text("@r\nACGTACGTACGT\n+\nIIIIIIIIIIII\n")
        rc = main([
            "call", str(ref), str(reads), "-o", str(tmp_path / "o.tsv"),
            "--phmm-kernel", "wavefront", "--phmm-dtype", "float32",
            "--alignment-mode", "global",
        ])
        assert rc == 2
        err = capsys.readouterr().err
        assert "alignment_mode='semiglobal'" in err

    def test_experiments_table2(self, capsys):
        rc = main(["experiments", "table2", "--scale", "tiny"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "CHARDISC" in out and "chrX" in out

    def test_diploid_simulation_flags(self, tmp_path):
        rc = main([
            "simulate", "--scale", "tiny", "--ploidy", "2",
            "--het-fraction", "0.5",
            "--reference", str(tmp_path / "r.fa"),
            "--reads", str(tmp_path / "r.fq"),
            "--truth", str(tmp_path / "t.tsv"),
        ])
        assert rc == 0
        truth = (tmp_path / "t.tsv").read_text()
        assert "het" in truth

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_seeding_flags(self, tmp_path, capsys):
        ref = tmp_path / "ref.fa"
        reads = tmp_path / "reads.fq"
        main([
            "simulate", "--scale", "tiny", "--seed", "11",
            "--reference", str(ref), "--reads", str(reads),
            "--truth", str(tmp_path / "t.tsv"),
        ])
        out = tmp_path / "snps.tsv"
        rc = main([
            "call", str(ref), str(reads), "-o", str(out),
            "--seed-len", "20", "--qgram-filter", "--filter-threshold", "0.6",
        ])
        assert rc == 0
        assert out.exists()

    def test_seed_len_not_exceeding_k_rejected(self, tmp_path, capsys):
        ref = tmp_path / "ref.fa"
        reads = tmp_path / "reads.fq"
        main([
            "simulate", "--scale", "tiny", "--seed", "11",
            "--reference", str(ref), "--reads", str(reads),
            "--truth", str(tmp_path / "t.tsv"),
        ])
        rc = main([
            "call", str(ref), str(reads), "-o", str(tmp_path / "o.tsv"),
            "--seed-len", "10",
        ])
        assert rc == 2
        assert "seed_len" in capsys.readouterr().err


class TestTelemetryCli:
    def test_top_once_renders_a_frame(self, capsys):
        from repro.observability import MetricsRegistry, PrometheusEndpoint, to_prometheus

        reg = MetricsRegistry()
        reg.inc("pipeline.reads", 123)
        endpoint = PrometheusEndpoint(lambda: to_prometheus(reg.snapshot()))
        url = endpoint.start()
        try:
            rc = main(["top", url, "--once", "--interval", "0.05"])
        finally:
            endpoint.close()
        assert rc == 0
        out = capsys.readouterr().out
        assert "repro top" in out
        assert "reads 123" in out

    def test_top_accepts_host_port_shorthand(self, capsys):
        from repro.observability import PrometheusEndpoint

        endpoint = PrometheusEndpoint(lambda: "")
        endpoint.start()
        try:
            rc = main(["top", f"127.0.0.1:{endpoint.port}", "--once"])
        finally:
            endpoint.close()
        assert rc == 0

    def test_top_unreachable_endpoint_exits_2(self, capsys):
        rc = main(["top", "http://127.0.0.1:1/metrics", "--once"])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_top_portless_endpoint_rejected(self, capsys):
        rc = main(["top", "localhost", "--once"])
        assert rc == 2
        assert "port" in capsys.readouterr().err

    def test_call_with_telemetry_prints_url(self, tmp_path, capsys):
        ref = tmp_path / "ref.fa"
        reads = tmp_path / "reads.fq"
        main([
            "simulate", "--scale", "tiny", "--seed", "11",
            "--reference", str(ref), "--reads", str(reads),
            "--truth", str(tmp_path / "t.tsv"),
        ])
        capsys.readouterr()
        out = tmp_path / "snps.tsv"
        rc = main([
            "call", str(ref), str(reads), "-o", str(out),
            "--parallel-workers", "2", "--telemetry",
            "--telemetry-interval", "0.1",
        ])
        assert rc == 0
        captured = capsys.readouterr()
        assert "telemetry: http://127.0.0.1:" in captured.err
        assert out.exists()
