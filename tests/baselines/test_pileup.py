"""Tests for the naive pileup baseline."""

import numpy as np
import pytest

from repro.baselines.pileup import PileupCaller
from repro.errors import PipelineError
from repro.evaluation.metrics import compare_to_truth
from repro.experiments.workload import build_workload


@pytest.fixture(scope="module")
def workload():
    return build_workload(scale="tiny", seed=88)


class TestPileupCaller:
    def test_finds_strong_snps(self, workload):
        caller = PileupCaller(workload.reference, seed=0)
        snps = caller.run(workload.reads)
        counts = compare_to_truth(snps, workload.catalog)
        assert counts.tp > 0
        assert counts.precision >= 0.7

    def test_majority_fraction_enforced(self, workload):
        strict = PileupCaller(workload.reference, min_fraction=0.95, seed=0)
        loose = PileupCaller(workload.reference, min_fraction=0.6, seed=0)
        s = {x.pos for x in strict.run(workload.reads)}
        l = {x.pos for x in loose.run(workload.reads)}
        assert s <= l

    def test_validation(self, workload):
        with pytest.raises(PipelineError):
            PileupCaller(workload.reference, min_depth=0)
        with pytest.raises(PipelineError):
            PileupCaller(workload.reference, min_fraction=0.4)

    def test_votes_reported(self, workload):
        for snp in PileupCaller(workload.reference, seed=0).run(workload.reads):
            assert 0 < snp.votes <= snp.depth
