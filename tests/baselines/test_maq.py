"""Tests for the MAQ-like baseline."""

import numpy as np
import pytest

from repro.baselines.maq import MaqConfig, MaqLikeCaller
from repro.evaluation.metrics import compare_to_truth
from repro.experiments.workload import build_workload
from repro.genome.alphabet import reverse_complement
from repro.genome.fastq import Read
from repro.simulate.genome_sim import GenomeSpec, simulate_genome


@pytest.fixture(scope="module")
def workload():
    return build_workload(scale="tiny", seed=88)


def perfect_read(ref, pos, length=62, name="r"):
    return Read(
        name=name,
        codes=ref.codes[pos : pos + length].copy(),
        quals=np.full(length, 40, dtype=np.uint8),
    )


class TestMapping:
    def test_perfect_read_placed_exactly(self, workload):
        mapper = MaqLikeCaller(workload.reference, seed=0)
        placed = mapper.map_read(perfect_read(workload.reference, 3000))
        assert placed is not None
        start, strand, score, mapq = placed
        assert start == 3000 and strand == 1 and score == 0
        assert mapq > 0

    def test_reverse_read_placed(self, workload):
        ref = workload.reference
        pos = 2000
        read = Read(
            "rc",
            reverse_complement(ref.codes[pos : pos + 62]),
            np.full(62, 40, dtype=np.uint8),
        )
        placed = MaqLikeCaller(ref, seed=0).map_read(read)
        assert placed is not None
        assert placed[0] == pos and placed[1] == -1

    def test_mismatches_raise_score(self, workload):
        ref = workload.reference
        read = perfect_read(ref, 1000)
        read.codes[5] = (read.codes[5] + 1) % 4
        placed = MaqLikeCaller(ref, seed=0).map_read(read)
        assert placed is not None
        assert placed[2] == 40  # the mismatched base's quality

    def test_high_mismatch_sum_filtered(self, workload):
        ref = workload.reference
        config = MaqConfig(max_mismatch_sum=50)
        read = perfect_read(ref, 1000)
        for i in (3, 9):
            read.codes[i] = (read.codes[i] + 1) % 4  # 80 quality sum
        mapper = MaqLikeCaller(ref, config, seed=0)
        assert mapper.map_read(read) is None

    def test_multiread_gets_zero_mapq_and_random_placement(self):
        # exact repeat: two equally good placements
        ref, repeats = simulate_genome(
            GenomeSpec(length=20_000, n_repeats=1, repeat_length=400,
                       repeat_divergence=0.0),
            seed=9,
        )
        rep = repeats[0]
        read = perfect_read(ref, rep.src_start + 100)
        placements = set()
        for seed in range(10):
            placed = MaqLikeCaller(ref, seed=seed).map_read(read)
            assert placed is not None
            assert placed[3] == 0  # ambiguous -> mapping quality 0
            placements.add(placed[0])
        # random assignment visits both copies across seeds
        assert len(placements) == 2

    def test_discarded_reads_counted(self, workload):
        mapper = MaqLikeCaller(workload.reference, seed=0)
        rng = np.random.default_rng(1)
        junk = Read("j", rng.integers(0, 4, 62).astype(np.uint8),
                    np.full(62, 40, dtype=np.uint8))
        assert not mapper.add_read(junk)
        assert mapper.n_discarded == 1


class TestCalling:
    def test_finds_planted_snps(self, workload):
        caller = MaqLikeCaller(workload.reference, seed=0)
        snps = caller.run(workload.reads)
        counts = compare_to_truth(snps, workload.catalog)
        assert counts.precision >= 0.8
        assert counts.recall >= 0.4

    def test_no_snps_on_clean_reads(self, workload):
        ref = workload.reference
        rng = np.random.default_rng(2)
        reads = [
            perfect_read(ref, int(rng.integers(0, len(ref) - 62)), name=f"c{i}")
            for i in range(400)
        ]
        snps = MaqLikeCaller(ref, seed=0).run(reads)
        assert snps == []

    def test_quality_cutoff_monotone(self, workload):
        strict = MaqLikeCaller(
            workload.reference, MaqConfig(snp_quality_cutoff=60), seed=0
        ).run(workload.reads)
        loose = MaqLikeCaller(
            workload.reference, MaqConfig(snp_quality_cutoff=10), seed=0
        ).run(workload.reads)
        assert len(strict) <= len(loose)
        assert {s.pos for s in strict} <= {s.pos for s in loose}

    def test_min_depth_respected(self, workload):
        caller = MaqLikeCaller(workload.reference, MaqConfig(min_depth=3), seed=0)
        for snp in caller.run(workload.reads):
            assert snp.depth >= 3
