"""Tests for the public facade (:mod:`repro.api`).

The facade is a thin composition over the internal pipeline, so every test
is an equivalence: whatever verb combination the caller picks — one-shot
``run``, staged ``map_reads``+``call``, engine ``workers`` over the
persistent pool, banded or full kernels — the SNP output is the same.
The engine's resource lifecycle (pool ownership, context manager, worker
resize) is covered here; the pool internals live in
``tests/parallel/test_pool.py``.
"""

import warnings

import numpy as np
import pytest

import repro
from repro.api import CallResult, Engine
from repro.errors import PipelineError
from repro.experiments.workload import build_workload
from repro.genome.fasta import write_fasta
from repro.pipeline.config import ParallelConfig, PipelineConfig
from repro.pipeline.gnumap import GnumapSnp


def fork_config(**kwargs):
    # fork keeps repeated pool spawns cheap in tests; semantics are
    # start-method-agnostic (tests/pipeline/test_mp_backend.py).
    return PipelineConfig(parallel=ParallelConfig(start_method="fork", **kwargs))


@pytest.fixture(scope="module")
def workload():
    wl = build_workload(scale="tiny", seed=17)
    wl.reads = wl.reads[:400]
    return wl


def snp_keys(snps):
    return [(s.pos, s.ref_name, s.alt_name) for s in snps]


class TestEngine:
    def test_run_matches_internal_pipeline(self, workload):
        config = PipelineConfig()
        internal = GnumapSnp(workload.reference, config).run(workload.reads)
        result = Engine(workload.reference, config).run(workload.reads)
        assert isinstance(result, CallResult)
        assert snp_keys(result.snps) == snp_keys(internal.snps)
        assert result.stats.n_reads == internal.stats.n_reads

    def test_staged_map_then_call_matches_run(self, workload):
        engine = Engine(workload.reference)
        one_shot = Engine(workload.reference).run(workload.reads)
        half = len(workload.reads) // 2
        stats = engine.map_reads(workload.reads[:half])
        assert stats.n_reads == half
        stats = engine.map_reads(workload.reads[half:])
        assert stats.n_reads == len(workload.reads)  # cumulative
        staged = engine.call()
        assert snp_keys(staged.snps) == snp_keys(one_shot.snps)
        assert np.allclose(
            staged.accumulator.snapshot(), one_shot.accumulator.snapshot()
        )

    def test_call_before_map_raises(self, workload):
        with pytest.raises(PipelineError):
            Engine(workload.reference).call()

    def test_reset_drops_evidence(self, workload):
        engine = Engine(workload.reference)
        engine.map_reads(workload.reads[:50])
        engine.reset()
        with pytest.raises(PipelineError):
            engine.call()
        assert engine.map_reads(workload.reads[:50]).n_reads == 50

    def test_workers_two_matches_serial(self, workload):
        config = PipelineConfig()
        serial = Engine(workload.reference, config).run(workload.reads)
        with Engine(workload.reference, config, workers=2) as engine:
            mp = engine.run(workload.reads)
        assert snp_keys(mp.snps) == snp_keys(serial.snps)

    def test_bad_workers_rejected(self, workload):
        with pytest.raises(PipelineError):
            Engine(workload.reference, workers=0)
        # An explicit per-call workers=0 warns (deprecated kwarg) and then
        # fails validation, same as always.
        with pytest.warns(DeprecationWarning), pytest.raises(PipelineError):
            Engine(workload.reference).run(workload.reads, workers=0)
        with pytest.warns(DeprecationWarning), pytest.raises(PipelineError):
            Engine(workload.reference).map_reads(workload.reads, workers=0)

    def test_workers_from_config(self, workload):
        engine = Engine(
            workload.reference,
            PipelineConfig(parallel=ParallelConfig(workers=3)),
        )
        assert engine.workers == 3
        # The explicit constructor kwarg wins over the config.
        assert Engine(
            workload.reference,
            PipelineConfig(parallel=ParallelConfig(workers=3)),
            workers=2,
        ).workers == 2

    def test_staged_parallel_map_matches_staged_serial(self, workload):
        config = fork_config()
        serial = Engine(workload.reference, config)
        half = len(workload.reads) // 2
        with Engine(workload.reference, config, workers=2) as parallel:
            for batch in (workload.reads[:half], workload.reads[half:]):
                serial.map_reads(batch)
                parallel.map_reads(batch)
            assert parallel._stats.n_reads == len(workload.reads)
            assert snp_keys(parallel.call().snps) == snp_keys(serial.call().snps)

    def test_from_fasta(self, workload, tmp_path):
        path = tmp_path / "ref.fa"
        write_fasta(path, {workload.reference.name: workload.reference.codes})
        engine = Engine.from_fasta(str(path))
        assert len(engine.reference) == len(workload.reference)
        assert engine.reference.name == workload.reference.name

    def test_from_fasta_rejects_multi_record(self, workload, tmp_path):
        path = tmp_path / "two.fa"
        codes = workload.reference.codes[:100]
        write_fasta(path, {"a": codes, "b": codes})
        with pytest.raises(PipelineError):
            Engine.from_fasta(str(path))

    def test_write_tsv(self, workload, tmp_path):
        result = Engine(workload.reference).run(workload.reads)
        out = tmp_path / "snps.tsv"
        n = result.write_tsv(str(out))
        assert n == len(result.snps)
        assert out.read_text().startswith("pos\t")


class TestBandedEngine:
    @pytest.mark.parametrize("band_mode", ["fixed", "adaptive"])
    def test_banded_matches_full_calls(self, workload, band_mode):
        full = Engine(workload.reference, PipelineConfig()).run(workload.reads)
        banded = Engine(
            workload.reference, PipelineConfig(band_mode=band_mode)
        ).run(workload.reads)
        assert snp_keys(banded.snps) == snp_keys(full.snps)

    def test_banded_serial_matches_banded_mp(self, workload):
        config = PipelineConfig(band_mode="adaptive")
        serial = Engine(workload.reference, config).run(workload.reads)
        with Engine(workload.reference, config, workers=2) as engine:
            mp = engine.run(workload.reads)
        assert snp_keys(mp.snps) == snp_keys(serial.snps)
        assert np.allclose(
            mp.accumulator.snapshot(), serial.accumulator.snapshot(), atol=1e-3
        )


class TestEngineLifecycle:
    def test_context_manager_releases_pool_engine_stays_usable(self, workload):
        reads = workload.reads[:120]
        with Engine(workload.reference, fork_config(), workers=2) as engine:
            first = engine.run(reads)
            assert engine._pool is not None and not engine._pool.closed
        # __exit__ released the fleet and segments...
        assert engine._pool is None
        # ...but the engine is not poisoned: the next call just rebuilds.
        again = engine.run(reads)
        assert snp_keys(again.snps) == snp_keys(first.snps)

    def test_pool_reused_across_calls(self, workload):
        reads = workload.reads[:120]
        with Engine(workload.reference, fork_config(), workers=2) as engine:
            engine.run(reads)
            pool = engine._pool
            engine.run(reads)
            engine.map_reads(reads)
            assert engine._pool is pool
            assert pool.runs == 3

    def test_workers_resize_recycles_pool(self, workload):
        reads = workload.reads[:120]
        with Engine(workload.reference, fork_config(), workers=2) as engine:
            engine.run(reads)
            pool = engine._pool
            engine.workers = 3
            assert engine.workers == 3
            assert pool.closed and engine._pool is None
            engine.run(reads)
            assert engine._pool is not None and engine._pool.n_workers == 3
        with pytest.raises(PipelineError):
            engine.workers = 0

    def test_per_call_workers_kwarg_warns(self, workload):
        reads = workload.reads[:120]
        with Engine(workload.reference, fork_config()) as engine:
            with pytest.warns(DeprecationWarning, match="workers"):
                result = engine.run(reads, workers=2)
        serial = Engine(workload.reference).run(reads)
        assert snp_keys(result.snps) == snp_keys(serial.snps)

    def test_close_is_idempotent(self, workload):
        engine = Engine(workload.reference, workers=2)
        engine.close()
        engine.close()


class TestRemovedShims:
    def test_1x_shims_are_gone(self):
        # 2.0 removed the deprecated top-level aliases.
        assert not hasattr(repro, "GnumapSnp")
        assert not hasattr(repro, "run_multiprocessing")
        assert "GnumapSnp" not in repro.__all__

    def test_internal_constructor_stays_silent(self, workload):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            GnumapSnp(workload.reference, PipelineConfig())
            Engine(workload.reference)

    def test_facade_is_exported_top_level(self):
        assert repro.Engine is Engine
        assert repro.CallResult is CallResult
        assert "Engine" in repro.__all__
        assert "ParallelConfig" in repro.__all__
