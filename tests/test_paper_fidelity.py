"""Paper-fidelity pins: values the paper states explicitly.

Each test quotes the paper (section in the docstring) and asserts our
implementation reproduces the stated number or construction exactly.
"""

import numpy as np
import pytest
from scipy import stats


class TestSectionV:
    def test_default_mer_size_is_10(self):
        """§V: 'create a genomic hash table of k-mers (default k=10)'."""
        from repro.index.hashindex import DEFAULT_K
        from repro.pipeline.config import PipelineConfig

        assert DEFAULT_K == 10
        assert PipelineConfig().k == 10


class TestSectionVI:
    def test_lrt_mle_worked_example(self):
        """§V-C: 'suppose that 14, 1, 3, and 2 of the reads align an A, C,
        G, and T ... z = (14, 1, 3, 2, 0)' with MLEs p(5) = z(5)/n and
        p(4) = (n - z(5))/4n."""
        from repro.calling.negative_multinomial import mle_monoploid

        z = np.array([[14.0, 1.0, 3.0, 2.0, 0.0]])
        p_top, p_rest = mle_monoploid(z)
        assert p_top[0] == pytest.approx(14 / 20)
        assert p_rest[0] == pytest.approx(6 / 80)

    def test_lrt_statistic_matches_lambda_formula(self):
        """§VI step 3: lambda(z) = 0.2^n / (p5^z5 * p4^(n-z5))."""
        from repro.calling.lrt import lrt_statistic_monoploid

        z = np.array([14.0, 1.0, 3.0, 2.0, 0.0])
        n, z5 = 20.0, 14.0
        p5, p4 = z5 / n, (n - z5) / (4 * n)
        lam = 0.2**n / (p5**z5 * p4 ** (n - z5))
        assert lrt_statistic_monoploid(z)[0] == pytest.approx(-2 * np.log(lam))

    def test_cutoff_is_one_minus_alpha_over_5_quantile(self):
        """§VI step 3: 'we compare -2log(lambda(z)) with the (1 - alpha/5)th
        quantile of the chi2_1 distribution'."""
        from repro.calling.pvalues import significance_threshold

        for alpha in (0.05, 0.01, 0.001):
            assert significance_threshold(alpha) == pytest.approx(
                stats.chi2.ppf(1 - alpha / 5, df=1)
            )

    def test_chardisc_worked_examples(self):
        """§VI-B.1: one a -> [255,0,0,0,0]; one a + one t -> [128,0,0,127,0];
        254 a + 1 t -> [254,0,0,1,0]."""
        from repro.memory.chardisc import ByteAccumulator

        acc = ByteAccumulator(1)
        acc.add(np.array([0]), np.array([[1.0, 0, 0, 0, 0]]))
        assert acc.byte_state()[1][0].tolist() == [255, 0, 0, 0, 0]

        acc2 = ByteAccumulator(1)
        acc2.add(np.array([0]), np.array([[1.0, 0, 0, 0, 0]]))
        acc2.add(np.array([0]), np.array([[0, 0, 0, 1.0, 0]]))
        bts = acc2.byte_state()[1][0]
        assert {int(bts[0]), int(bts[3])} == {128, 127}

        acc3 = ByteAccumulator(1)
        acc3.add(np.array([0]), np.array([[254.0, 0, 0, 0, 0]]))
        acc3.add(np.array([0]), np.array([[0, 0, 0, 1.0, 0]]))
        assert acc3.byte_state()[1][0].tolist() == [254, 0, 0, 1, 0]

    def test_backward_recursion_matches_paper_text(self):
        """§VI step 2 backward: b_M(i,j) = p*(i+1,j+1) T_MM b_M(i+1,j+1)
        + q T_MG [b_X(i+1,j) + b_Y(i,j+1)] — transcribed literally and
        compared against the implementation on a random instance."""
        from repro.phmm.model import PHMMParams
        from repro.phmm.reference_impl import backward_naive

        rng = np.random.default_rng(0)
        params = PHMMParams()
        N, M = 4, 5
        pstar = rng.uniform(0.01, 1.0, (N, M))
        bM, bGX, bGY = backward_naive(pstar, params, mode="global")
        q = params.q

        def p(i, j):  # p*(i+1, j+1), zero-padded
            return pstar[i, j] if i < N and j < M else 0.0

        for i in range(N - 1, -1, -1):
            for j in range(M - 1, 0, -1):
                lhs = bM[i, j]
                rhs = (
                    p(i, j) * params.T_MM * bM[i + 1, j + 1]
                    + q * params.T_MG * (bGX[i + 1, j] + bGY[i, j + 1])
                )
                assert lhs == pytest.approx(rhs, rel=1e-12)
                assert bGX[i, j] == pytest.approx(
                    p(i, j) * params.T_GM * bM[i + 1, j + 1]
                    + q * params.T_GG * bGX[i + 1, j],
                    rel=1e-12,
                )


class TestSectionVII:
    def test_workload_matches_paper_parameters(self):
        """§VII-A: 62-bp reads at ~12x coverage (31M reads / 155Mb chrX)."""
        from repro.experiments.workload import SCALES, build_workload

        wl = build_workload(scale="tiny", seed=0)
        assert len(wl.reads[0]) == 62
        assert SCALES["bench"][2] == 12.0

    def test_norm_chrx_footprint(self):
        """Table II: NORM on the 155 Mbp chrX uses 4.76 GB."""
        from repro.memory.footprint import CHRX_LENGTH, FootprintModel

        assert CHRX_LENGTH == 155_000_000
        assert FootprintModel().total_gb("NORM", CHRX_LENGTH) == pytest.approx(
            4.76, abs=0.05
        )

    def test_gnumap_rank_count(self):
        """Table I note: 'GNUMAP utilized a cluster of 30 machines'."""
        from repro.experiments.table1 import GNUMAP_RANKS

        assert GNUMAP_RANKS == 30
