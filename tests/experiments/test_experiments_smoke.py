"""Smoke tests for the experiment harnesses at tiny scale.

The real shape assertions live in benchmarks/; here we verify the harnesses
run end to end, produce well-formed rows, and format cleanly.
"""

import pytest

from repro.experiments import ablations, fig4, fig5, table1, table2, table3
from repro.experiments.workload import build_workload


@pytest.fixture(scope="module")
def workload():
    return build_workload(scale="tiny", seed=404)


class TestTable1:
    def test_rows_and_format(self, workload):
        rows = table1.run(workload=workload, n_ranks=4)
        assert len(rows) == 2
        programs = {r.program.split()[0] for r in rows}
        assert any("MAQ" in p for p in programs)
        text = table1.format(rows)
        assert "TP" in text and "Precision" in text
        for row in rows:
            assert row.time_minutes > 0
            total = row.counts.tp + row.counts.fn
            assert total == len(workload.catalog)


class TestTable2:
    def test_rows_and_format(self, workload):
        rows = table2.run(workload=workload)
        assert [r.optimization for r in rows] == ["NORM", "CHARDISC", "CENTDISC"]
        text = table2.format(rows)
        assert "chrX" in text
        assert rows[0].chrx_gb > rows[1].chrx_gb > rows[2].chrx_gb


class TestTable3:
    def test_rows_and_format(self, workload):
        rows = table3.run(workload=workload)
        # the paper's three modes plus the CENTDISC_WEIGHTED extension
        assert [r.optimization for r in rows] == [
            "NORM", "CHARDISC", "CENTDISC", "CENTDISC_WEIGHTED",
        ]
        assert rows[0].mem_bytes > rows[2].mem_bytes
        assert rows[3].mem_bytes == rows[2].mem_bytes
        text = table3.format(rows)
        assert "WT" in text


class TestFig4:
    def test_points_and_format(self, workload):
        points = fig4.run(workload=workload, ranks=(1, 2))
        modes = {p.mode for p in points}
        assert modes == {"read-spread", "memory-spread"}
        text = fig4.format(points)
        assert "reads/s" in text
        for p in points:
            assert p.reads_per_second > 0

    def test_bad_ranks_rejected(self, workload):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            fig4.run(workload=workload, ranks=())

    def test_hybrid_series_optional(self, workload):
        points = fig4.run(
            workload=workload, ranks=(2, 4), include_hybrid=True
        )
        modes = {p.mode for p in points}
        assert "hybrid (G=2)" in modes
        hybrid = [p for p in points if p.mode.startswith("hybrid")]
        memsp = {p.n_ranks: p for p in points if p.mode == "memory-spread"}
        # the whole point: hybrid beats pure memory-spread once its groups
        # hold more than one rank (at P == G it degenerates to memory-spread)
        for p in hybrid:
            if p.n_ranks > 2:
                assert p.reads_per_second > memsp[p.n_ranks].reads_per_second
            else:
                assert p.reads_per_second == pytest.approx(
                    memsp[p.n_ranks].reads_per_second, rel=0.05
                )


class TestFig5:
    def test_points_and_format(self, workload):
        points = fig5.run(workload=workload, ranks=(1, 2))
        opts = {p.optimization for p in points}
        assert opts == {"NORM", "CHARDISC", "CENTDISC"}
        text = fig5.format(points)
        assert "optimization" in text


class TestAblations:
    def test_rows_and_format(self, workload):
        rows = ablations.run(workload=workload)
        names = [r.variant for r in rows]
        assert "GNUMAP-SNP (full)" in names
        assert any("MAQ" in n for n in names)
        text = ablations.format(rows)
        assert "precision" in text
