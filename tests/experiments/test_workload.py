"""Tests for the shared experiment workload builder."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.experiments.workload import SCALES, build_workload


class TestBuildWorkload:
    def test_deterministic(self):
        a = build_workload(scale="tiny", seed=1)
        b = build_workload(scale="tiny", seed=1)
        assert (a.reference.codes == b.reference.codes).all()
        assert a.catalog.positions.tolist() == b.catalog.positions.tolist()
        assert len(a.reads) == len(b.reads)
        assert (a.reads[0].codes == b.reads[0].codes).all()

    def test_scale_parameters_respected(self):
        length, n_snps, coverage = SCALES["tiny"]
        wl = build_workload(scale="tiny", seed=2)
        assert len(wl.reference) == length
        assert len(wl.catalog) == n_snps
        assert wl.coverage == pytest.approx(coverage, rel=0.05)

    def test_unknown_scale_rejected(self):
        with pytest.raises(ConfigError):
            build_workload(scale="galactic")

    def test_diploid_option(self):
        wl = build_workload(scale="tiny", seed=3, ploidy=2, het_fraction=0.5)
        genotypes = {v.genotype for v in wl.catalog}
        assert genotypes == {"hom", "het"}

    def test_reads_carry_truth_metadata(self):
        wl = build_workload(scale="tiny", seed=4)
        for read in wl.reads[:20]:
            assert read.true_pos is not None
            assert read.true_strand in (-1, 1)
            assert len(read) == 62  # the paper's read length

    def test_snps_inside_margins(self):
        wl = build_workload(scale="tiny", seed=5)
        assert wl.catalog.positions.min() >= 62
        assert wl.catalog.positions.max() < len(wl.reference) - 62

    def test_no_repeats_option(self):
        wl = build_workload(scale="tiny", seed=6, with_repeats=False)
        assert len(wl.reference) == SCALES["tiny"][0]
