"""Tests for the ROC threshold-sweep experiment."""

import pytest

from repro.errors import ConfigError
from repro.experiments import roc
from repro.experiments.workload import build_workload


@pytest.fixture(scope="module")
def workload():
    return build_workload(scale="tiny", seed=505)


class TestScoredPositions:
    def test_gnumap_scores_cover_truth(self, workload):
        scored = roc.gnumap_scored_positions(workload)
        assert scored
        positions = {p for p, _ in scored}
        truth = set(workload.catalog.positions.tolist())
        # most planted SNPs appear among the scored candidates
        assert len(positions & truth) >= 0.5 * len(truth)
        assert all(s >= 0 for _, s in scored)

    def test_truth_scores_above_background(self, workload):
        scored = dict(roc.gnumap_scored_positions(workload))
        truth = set(workload.catalog.positions.tolist())
        t_scores = [s for p, s in scored.items() if p in truth]
        bg_scores = [s for p, s in scored.items() if p not in truth]
        if t_scores and bg_scores:
            import numpy as np

            assert np.median(t_scores) > np.median(bg_scores)

    def test_maq_scores(self, workload):
        scored = roc.maq_scored_positions(workload)
        assert all(q >= 0 for _, q in scored)


class TestRun:
    def test_rows_and_format(self, workload):
        points = roc.run(workload=workload, n_points=4)
        series = {p.series for p in points}
        assert len(series) == 2
        text = roc.format(points)
        assert "threshold" in text
        for p in points:
            assert 0 <= p.precision <= 1
            assert 0 <= p.recall <= 1

    def test_recall_monotone_along_curve(self, workload):
        points = roc.run(workload=workload, n_points=5)
        for series in {p.series for p in points}:
            recs = [p.recall for p in points if p.series == series]
            assert all(b >= a for a, b in zip(recs, recs[1:]))

    def test_auc_like(self, workload):
        points = roc.run(workload=workload, n_points=4)
        series = next(iter({p.series for p in points}))
        assert 0 <= roc.auc_like(points, series) <= 1
        with pytest.raises(ConfigError):
            roc.auc_like(points, "nope")

    def test_validation(self, workload):
        with pytest.raises(ConfigError):
            roc.run(workload=workload, n_points=1)
