"""Tests for the continuous negative-multinomial helpers."""

import numpy as np
import pytest

from repro.calling.negative_multinomial import (
    loglik,
    mle_monoploid,
    sample_alternative,
    sample_heterozygous,
    sample_null,
)
from repro.errors import CallingError


class TestLoglik:
    def test_uniform_kernel(self):
        z = np.array([2.0, 2, 2, 2, 2])
        ll = loglik(z, np.full(5, 0.2))
        assert ll[0] == pytest.approx(10 * np.log(0.2))

    def test_impossible_support(self):
        z = np.array([1.0, 0, 0, 0, 0])
        p = np.array([0.0, 0.25, 0.25, 0.25, 0.25])
        assert loglik(z, p)[0] == -np.inf

    def test_mle_maximises(self):
        # the paper's MLE must beat any perturbed (p_top, p_rest) pair
        z = np.array([[14.0, 1, 3, 2, 0]])
        p_top, p_rest = mle_monoploid(z)

        def structured_ll(pt, pr):
            order = np.argsort(-z[0])
            p = np.empty(5)
            p[order[0]] = pt
            p[order[1:]] = pr
            return loglik(z, p)[0]

        best = structured_ll(p_top[0], p_rest[0])
        for delta in (-0.05, 0.05):
            pt = p_top[0] + delta
            pr = (1 - pt) / 4
            if 0 < pt < 1:
                assert structured_ll(pt, pr) <= best + 1e-9

    def test_validation(self):
        with pytest.raises(CallingError):
            loglik(np.zeros(5), np.full(4, 0.25))
        with pytest.raises(CallingError):
            loglik(np.zeros(5), np.full(5, 0.3))


class TestMle:
    def test_paper_values(self):
        z = np.array([[14.0, 1, 3, 2, 0]])
        p_top, p_rest = mle_monoploid(z)
        assert p_top[0] == pytest.approx(14 / 20)
        assert p_rest[0] == pytest.approx(6 / 80)

    def test_zero_depth_null(self):
        p_top, p_rest = mle_monoploid(np.zeros((1, 5)))
        assert p_top[0] == 0.2 and p_rest[0] == 0.2


class TestSamplers:
    def test_null_uniform_in_expectation(self):
        z = sample_null(4000, depth=10.0, seed=0)
        assert z.shape == (4000, 5)
        assert (z >= 0).all()
        props = z.mean(axis=0) / z.mean(axis=0).sum()
        assert np.allclose(props, 0.2, atol=0.01)

    def test_alternative_dominant_channel(self):
        z = sample_alternative(2000, depth=10.0, dominant_channel=3, purity=0.9, seed=1)
        frac = z[:, 3].sum() / z.sum()
        assert 0.85 < frac < 0.95

    def test_heterozygous_split(self):
        z = sample_heterozygous(2000, depth=10.0, channel_a=0, channel_b=2,
                                purity=0.9, seed=2)
        fa = z[:, 0].sum() / z.sum()
        fc = z[:, 2].sum() / z.sum()
        assert 0.38 < fa < 0.52 and 0.38 < fc < 0.52

    def test_depth_scaling(self):
        z = sample_null(1000, depth=20.0, seed=3)
        assert z.sum(axis=1).mean() == pytest.approx(20.0, rel=0.1)

    def test_validation(self):
        with pytest.raises(CallingError):
            sample_null(-1, 10.0)
        with pytest.raises(CallingError):
            sample_alternative(10, 10.0, dominant_channel=9)
        with pytest.raises(CallingError):
            sample_alternative(10, 10.0, dominant_channel=0, purity=0.0)
        with pytest.raises(CallingError):
            sample_heterozygous(10, 10.0, channel_a=1, channel_b=1)
