"""Tests for the SNP caller on accumulated evidence."""

import numpy as np
import pytest

from repro.calling.caller import CallerConfig, SNPCaller
from repro.calling.negative_multinomial import sample_alternative, sample_null
from repro.errors import CallingError
from repro.genome.alphabet import GAP, N, encode


def z_matrix(rows):
    return np.asarray(rows, dtype=np.float64)


class TestCallerConfig:
    def test_validation(self):
        with pytest.raises(CallingError):
            CallerConfig(ploidy=3)
        with pytest.raises(CallingError):
            CallerConfig(alpha=0.0)
        with pytest.raises(CallingError):
            CallerConfig(method="bogus")
        with pytest.raises(CallingError):
            CallerConfig(fdr=1.0)
        with pytest.raises(CallingError):
            CallerConfig(min_depth=-1)


class TestBaseCalls:
    def test_strong_signal_significant(self):
        caller = SNPCaller(CallerConfig(alpha=0.001, min_depth=3))
        z = z_matrix([[12.0, 0.1, 0.1, 0.1, 0]])
        calls = caller.base_calls(z)
        assert len(calls) == 1
        assert calls[0].significant
        assert calls[0].top_channel == 0

    def test_below_min_depth_skipped(self):
        caller = SNPCaller(CallerConfig(min_depth=5))
        z = z_matrix([[3.0, 0, 0, 0, 0]])
        assert caller.base_calls(z) == []

    def test_uniform_background_not_significant(self):
        caller = SNPCaller()
        z = z_matrix([[2.0, 2.0, 2.0, 2.0, 2.0]])
        calls = caller.base_calls(z)
        assert len(calls) == 1
        assert not calls[0].significant

    def test_positions_offset(self):
        caller = SNPCaller()
        z = z_matrix([[9.0, 0, 0, 0, 0]])
        calls = caller.base_calls(z, positions=np.array([1234]))
        assert calls[0].pos == 1234

    def test_diploid_het_genotype(self):
        caller = SNPCaller(CallerConfig(ploidy=2))
        z = z_matrix([[10.0, 10.0, 0.2, 0.2, 0]])
        calls = caller.base_calls(z)
        assert calls[0].heterozygous
        assert calls[0].genotype == (0, 1)

    def test_shape_validation(self):
        caller = SNPCaller()
        with pytest.raises(CallingError):
            caller.base_calls(np.zeros((2, 4)))
        with pytest.raises(CallingError):
            caller.base_calls(np.zeros((2, 5)), positions=np.array([1]))


class TestSnps:
    def test_alt_call_reported(self):
        caller = SNPCaller()
        ref = encode("ACGT")
        z = np.zeros((4, 5))
        z[1] = [15.0, 0.1, 0.1, 0.1, 0]  # strong A evidence at ref C
        snps = caller.snps(z, ref)
        assert len(snps) == 1
        assert snps[0].pos == 1
        assert snps[0].ref_name == "C"
        assert snps[0].alt_name == "A"

    def test_reference_match_not_reported(self):
        caller = SNPCaller()
        ref = encode("AAAA")
        z = np.zeros((4, 5))
        z[2] = [15.0, 0.1, 0.1, 0.1, 0]  # A evidence at ref A
        assert caller.snps(z, ref) == []

    def test_n_reference_skipped(self):
        caller = SNPCaller()
        ref = encode("ANAA")
        z = np.zeros((4, 5))
        z[1] = [15.0, 0, 0, 0, 0]
        assert caller.snps(z, ref) == []

    def test_gap_calls_suppressed_by_default(self):
        caller = SNPCaller()
        ref = encode("AAAA")
        z = np.zeros((4, 5))
        z[0] = [0.1, 0.1, 0.1, 0.1, 15.0]  # deletion evidence
        assert caller.snps(z, ref) == []
        permissive = SNPCaller(CallerConfig(call_gaps=True))
        snps = permissive.snps(z, ref)
        assert len(snps) == 1
        assert GAP in snps[0].call.genotype

    def test_het_with_ref_allele_is_snp(self):
        caller = SNPCaller(CallerConfig(ploidy=2))
        ref = encode("AAAA")
        z = np.zeros((4, 5))
        z[0] = [10.0, 10.0, 0.2, 0.2, 0]  # A/C het at ref A
        snps = caller.snps(z, ref)
        assert len(snps) == 1
        assert snps[0].alt_name == "A/C"

    def test_out_of_range_position_rejected(self):
        caller = SNPCaller()
        z = np.zeros((1, 5))
        z[0] = [15.0, 0, 0, 0, 0]
        with pytest.raises(CallingError):
            caller.snps(z, encode("AC"), positions=np.array([10]))

    def test_fdr_method_runs(self):
        caller = SNPCaller(CallerConfig(method="fdr", fdr=0.05))
        ref = encode("C" * 10)
        z = np.tile(np.array([0.5, 3.0, 0.5, 0.5, 0.2]), (10, 1))
        z[4] = [20.0, 0.1, 0.1, 0.1, 0]
        snps = caller.snps(z, ref)
        assert any(s.pos == 4 for s in snps)


class TestStatisticalBehaviour:
    def test_false_positive_rate_controlled(self):
        # Background-only evidence at many positions: strict Bonferroni
        # alpha keeps false calls rare.
        caller = SNPCaller(CallerConfig(alpha=0.001))
        z = sample_null(3000, depth=12.0, seed=0)
        calls = caller.base_calls(z)
        n_sig = sum(c.significant for c in calls)
        assert n_sig < 30  # << 3000

    def test_power_on_real_signal(self):
        caller = SNPCaller(CallerConfig(alpha=0.001))
        z = sample_alternative(300, depth=12.0, dominant_channel=2, purity=0.92, seed=1)
        calls = caller.base_calls(z)
        n_sig = sum(c.significant and c.top_channel == 2 for c in calls)
        assert n_sig > 250
