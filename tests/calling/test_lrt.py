"""Tests for the monoploid and diploid LRT statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CallingError
from repro.calling.lrt import (
    lrt_statistic_diploid,
    lrt_statistic_monoploid,
    top_channels,
)


def manual_monoploid(z):
    """Direct transcription of the paper's formula for one position."""
    z = np.asarray(z, dtype=float)
    n = z.sum()
    if n == 0:
        return 0.0
    z5 = z.max()
    p5 = z5 / n
    p4 = (n - z5) / (4 * n)
    logL1 = (z5 * np.log(p5) if z5 > 0 else 0.0) + (
        (n - z5) * np.log(p4) if n - z5 > 0 else 0.0
    )
    return max(0.0, 2 * (logL1 - n * np.log(0.2)))


class TestMonoploid:
    def test_matches_manual_formula(self):
        rng = np.random.default_rng(0)
        z = rng.gamma(2.0, 3.0, size=(50, 5))
        stat = lrt_statistic_monoploid(z)
        for i in range(50):
            assert stat[i] == pytest.approx(manual_monoploid(z[i]))

    def test_pure_signal_formula(self):
        # all mass on one base: lambda = 0.2^n / 1 -> stat = -2 n log 0.2
        z = np.array([10.0, 0, 0, 0, 0])
        stat = lrt_statistic_monoploid(z)[0]
        assert stat == pytest.approx(-2 * 10 * np.log(0.2))

    def test_uniform_background_near_zero(self):
        z = np.full((1, 5), 4.0)
        stat = lrt_statistic_monoploid(z)[0]
        # top proportion = 0.2 exactly -> statistic 0
        assert stat == pytest.approx(0.0, abs=1e-9)

    def test_zero_depth_zero(self):
        assert lrt_statistic_monoploid(np.zeros((1, 5)))[0] == 0.0

    def test_monotone_in_dominance(self):
        # shifting mass into the top channel at fixed n raises the statistic
        stats = []
        for top in (6.0, 8.0, 10.0, 12.0):
            rest = (20.0 - top) / 4.0
            z = np.array([top, rest, rest, rest, rest])
            stats.append(lrt_statistic_monoploid(z)[0])
        assert all(b > a for a, b in zip(stats, stats[1:]))

    def test_scales_with_depth(self):
        z1 = np.array([8.0, 1, 1, 1, 1])
        z2 = 2 * z1
        assert lrt_statistic_monoploid(z2)[0] == pytest.approx(
            2 * lrt_statistic_monoploid(z1)[0]
        )

    def test_permutation_invariant(self):
        rng = np.random.default_rng(1)
        z = rng.gamma(2.0, 2.0, 5)
        base = lrt_statistic_monoploid(z)[0]
        for _ in range(5):
            perm = rng.permutation(5)
            assert lrt_statistic_monoploid(z[perm])[0] == pytest.approx(base)

    def test_single_vector_accepted(self):
        assert lrt_statistic_monoploid(np.array([5.0, 0, 0, 0, 0])).shape == (1,)

    def test_negative_rejected(self):
        with pytest.raises(CallingError):
            lrt_statistic_monoploid(np.array([-1.0, 0, 0, 0, 0]))

    def test_bad_shape_rejected(self):
        with pytest.raises(CallingError):
            lrt_statistic_monoploid(np.zeros((3, 4)))

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(min_value=0, max_value=100), min_size=5, max_size=5))
    def test_nonnegative_property(self, z):
        stat = lrt_statistic_monoploid(np.array(z))[0]
        assert stat >= 0.0
        assert np.isfinite(stat)


class TestDiploid:
    def test_het_alternative_wins_on_balanced_two_bases(self):
        z = np.array([10.0, 10.0, 0.3, 0.3, 0.1])
        stat, het = lrt_statistic_diploid(z)
        assert het[0]
        assert stat[0] > 0

    def test_hom_alternative_wins_on_single_base(self):
        z = np.array([18.0, 0.5, 0.5, 0.5, 0.5])
        stat, het = lrt_statistic_diploid(z)
        assert not het[0]

    def test_diploid_stat_at_least_monoploid(self):
        # the diploid alternative is a superset: stat >= monoploid stat
        rng = np.random.default_rng(2)
        z = rng.gamma(2.0, 3.0, size=(100, 5))
        mono = lrt_statistic_monoploid(z)
        dip, _ = lrt_statistic_diploid(z)
        assert (dip >= mono - 1e-9).all()

    def test_het_50_50_split_beats_hom_model(self):
        z = np.array([10.0, 10.0, 0.0, 0.0, 0.0])
        stat, het = lrt_statistic_diploid(z)
        mono = lrt_statistic_monoploid(z)
        assert het[0]
        assert stat[0] > mono[0]

    def test_zero_depth(self):
        stat, het = lrt_statistic_diploid(np.zeros((1, 5)))
        assert stat[0] == 0.0

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(min_value=0, max_value=100), min_size=5, max_size=5))
    def test_nonnegative_property(self, z):
        stat, _ = lrt_statistic_diploid(np.array(z))
        assert stat[0] >= 0.0 and np.isfinite(stat[0])


class TestHetMargin:
    def test_default_margin_separates_noise_from_het(self):
        """The calibration behind DEFAULT_HET_MARGIN: homozygous evidence
        with a small noisy second channel stays hom; balanced splits at
        realistic depth go het."""
        from repro.calling.lrt import DEFAULT_HET_MARGIN

        noise = np.array([[11.5, 0.3, 0.15, 0.05, 0.0]])
        _, het = lrt_statistic_diploid(noise)
        assert not het[0]

        balanced = np.array([[6.0, 5.5, 0.2, 0.1, 0.0]])
        _, het2 = lrt_statistic_diploid(balanced)
        assert het2[0]
        assert DEFAULT_HET_MARGIN == pytest.approx(6.63)

    def test_margin_monotone(self):
        z = np.array([[6.0, 5.5, 0.2, 0.1, 0.0]])
        _, loose = lrt_statistic_diploid(z, het_margin=0.1)
        _, strict = lrt_statistic_diploid(z, het_margin=1e6)
        assert loose[0] and not strict[0]

    def test_negative_margin_rejected(self):
        with pytest.raises(CallingError):
            lrt_statistic_diploid(np.zeros((1, 5)), het_margin=-1)


class TestTopChannels:
    def test_basic(self):
        top, second = top_channels(np.array([1.0, 5.0, 3.0, 0.0, 0.0]))
        assert top[0] == 1 and second[0] == 2

    def test_tie_breaks_to_lower_index(self):
        top, second = top_channels(np.array([2.0, 2.0, 0.0, 0.0, 0.0]))
        assert top[0] == 0 and second[0] == 1

    def test_vectorised(self):
        z = np.array([[9, 1, 1, 1, 1], [1, 1, 9, 8, 1]], dtype=float)
        top, second = top_channels(z)
        assert top.tolist() == [0, 2]
        assert second.tolist() == [1, 3]
