"""Tests for p-values, the Bonferroni cutoff, and BH FDR control."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats

from repro.errors import CallingError
from repro.calling.pvalues import (
    benjamini_hochberg,
    bh_adjusted_pvalues,
    chi2_pvalue,
    is_significant,
    significance_threshold,
)


class TestChi2Pvalue:
    def test_known_quantiles(self):
        assert chi2_pvalue(np.array([0.0]))[0] == pytest.approx(1.0)
        assert chi2_pvalue(np.array([3.841]))[0] == pytest.approx(0.05, abs=1e-3)

    def test_monotone_decreasing(self):
        p = chi2_pvalue(np.array([0.0, 1.0, 5.0, 20.0]))
        assert (np.diff(p) < 0).all()

    def test_negative_rejected(self):
        with pytest.raises(CallingError):
            chi2_pvalue(np.array([-1.0]))


class TestSignificanceThreshold:
    def test_matches_paper_construction(self):
        # (1 - alpha/5) quantile of chi^2_1
        alpha = 0.01
        expected = stats.chi2.ppf(1 - alpha / 5, 1)
        assert significance_threshold(alpha) == pytest.approx(expected)

    def test_stricter_alpha_higher_threshold(self):
        assert significance_threshold(0.0001) > significance_threshold(0.01)

    def test_equivalence_with_pvalue_cutoff(self):
        # stat > threshold  <=>  pvalue < alpha/5
        alpha = 0.001
        thr = significance_threshold(alpha)
        stat = np.array([thr - 0.01, thr + 0.01])
        p = chi2_pvalue(stat)
        sig = is_significant(stat, alpha)
        assert sig.tolist() == [False, True]
        assert (p < alpha / 5).tolist() == [False, True]

    def test_validation(self):
        with pytest.raises(CallingError):
            significance_threshold(0.0)
        with pytest.raises(CallingError):
            significance_threshold(1.0)


class TestBenjaminiHochberg:
    def test_known_example(self):
        p = np.array([0.001, 0.008, 0.039, 0.041, 0.042, 0.06, 0.074, 0.205])
        mask = benjamini_hochberg(p, fdr=0.05)
        # classic textbook outcome: first 5 rejected at q=0.05... verify via
        # the step-up rule directly
        m = len(p)
        ranked = np.sort(p)
        k = max(i for i in range(m) if ranked[i] <= 0.05 * (i + 1) / m)
        assert mask.sum() == k + 1

    def test_all_null_rejects_nothing(self):
        rng = np.random.default_rng(0)
        p = rng.uniform(0.2, 1.0, 100)
        assert benjamini_hochberg(p, fdr=0.05).sum() == 0

    def test_all_tiny_rejects_everything(self):
        p = np.full(10, 1e-10)
        assert benjamini_hochberg(p, fdr=0.05).all()

    def test_empty(self):
        assert benjamini_hochberg(np.array([]), 0.05).size == 0

    def test_monotone_in_fdr(self):
        rng = np.random.default_rng(1)
        p = rng.uniform(0, 0.2, 50)
        loose = benjamini_hochberg(p, fdr=0.2)
        strict = benjamini_hochberg(p, fdr=0.01)
        assert (strict <= loose).all()

    def test_rejection_set_is_pvalue_prefix(self):
        rng = np.random.default_rng(2)
        p = rng.uniform(0, 1, 60)
        mask = benjamini_hochberg(p, fdr=0.1)
        if mask.any():
            assert p[mask].max() <= p[~mask].min() + 1e-12

    def test_validation(self):
        with pytest.raises(CallingError):
            benjamini_hochberg(np.array([0.5]), fdr=0.0)
        with pytest.raises(CallingError):
            benjamini_hochberg(np.array([1.5]), fdr=0.05)
        with pytest.raises(CallingError):
            benjamini_hochberg(np.zeros((2, 2)), fdr=0.05)

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.floats(min_value=0, max_value=1), min_size=1, max_size=60),
        st.floats(min_value=0.01, max_value=0.5),
    )
    def test_adjusted_pvalues_equivalent(self, p, fdr):
        p = np.array(p)
        mask = benjamini_hochberg(p, fdr=fdr)
        adjusted = bh_adjusted_pvalues(p)
        # equivalence holds away from the exact threshold boundary, where
        # the two formulations differ by float rounding (p * m / m != p)
        off_boundary = np.abs(adjusted - fdr) > 1e-9
        assert (mask == (adjusted <= fdr))[off_boundary].all()

    def test_adjusted_monotone_with_raw_order(self):
        p = np.array([0.01, 0.5, 0.03, 0.9])
        adj = bh_adjusted_pvalues(p)
        order = np.argsort(p)
        assert (np.diff(adj[order]) >= -1e-12).all()
