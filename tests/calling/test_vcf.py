"""Tests for VCF output/round-trip."""

import io

import pytest

from repro.calling.records import BaseCall, SNPCall
from repro.calling.vcf import read_vcf, write_vcf
from repro.errors import CallingError
from repro.genome.alphabet import A, C, G, GAP, T


def mk_snp(pos, ref, top, second=None, het=False, pvalue=1e-6, depth=12.0):
    call = BaseCall(
        pos=pos,
        depth=depth,
        top_channel=top,
        second_channel=second if second is not None else ref,
        stat=25.0,
        pvalue=pvalue,
        significant=True,
        heterozygous=het,
    )
    return SNPCall(pos=pos, ref_base=ref, call=call)


class TestWriteVcf:
    def test_basic_record(self):
        buf = io.StringIO()
        written, skipped = write_vcf(buf, [mk_snp(4, A, G)], contig="chr1")
        assert (written, skipped) == (1, 0)
        text = buf.getvalue()
        assert text.startswith("##fileformat=VCFv4.2")
        data = [l for l in text.splitlines() if not l.startswith("#")]
        fields = data[0].split("\t")
        assert fields[0] == "chr1"
        assert fields[1] == "5"  # 1-based
        assert fields[3] == "A" and fields[4] == "G"
        assert fields[9] == "1/1"

    def test_het_with_ref_is_0_1(self):
        buf = io.StringIO()
        write_vcf(buf, [mk_snp(2, A, A, second=C, het=True)])
        line = [l for l in buf.getvalue().splitlines() if not l.startswith("#")][0]
        fields = line.split("\t")
        assert fields[4] == "C"
        assert fields[9] == "0/1"

    def test_het_two_alts_is_1_2(self):
        buf = io.StringIO()
        write_vcf(buf, [mk_snp(2, A, G, second=T, het=True)])
        line = [l for l in buf.getvalue().splitlines() if not l.startswith("#")][0]
        fields = line.split("\t")
        assert set(fields[4].split(",")) == {"G", "T"}
        assert fields[9] == "1/2"

    def test_gap_calls_skipped(self):
        buf = io.StringIO()
        written, skipped = write_vcf(buf, [mk_snp(2, A, GAP)])
        assert (written, skipped) == (0, 1)

    def test_records_sorted(self):
        buf = io.StringIO()
        write_vcf(buf, [mk_snp(9, A, G), mk_snp(2, C, T)])
        data = [l for l in buf.getvalue().splitlines() if not l.startswith("#")]
        assert [int(l.split("\t")[1]) for l in data] == [3, 10]

    def test_zero_pvalue_capped(self):
        buf = io.StringIO()
        write_vcf(buf, [mk_snp(1, A, G, pvalue=0.0)])
        line = [l for l in buf.getvalue().splitlines() if not l.startswith("#")][0]
        assert float(line.split("\t")[5]) == 5000.0


class TestReadVcf:
    def test_round_trip(self):
        snps = [mk_snp(4, A, G), mk_snp(9, C, T, second=A, het=True)]
        buf = io.StringIO()
        write_vcf(buf, snps, contig="ctg")
        records = read_vcf(io.StringIO(buf.getvalue()))
        assert len(records) == 2
        assert records[0].pos == 4 and records[0].ref == "A" and records[0].alt == "G"
        assert records[0].depth == pytest.approx(12.0)
        assert records[0].stat == pytest.approx(25.0)
        assert records[1].genotype in ("0/1", "1/2")

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "out.vcf"
        write_vcf(path, [mk_snp(0, G, C)])
        assert read_vcf(path)[0].pos == 0

    def test_malformed_rejected(self):
        with pytest.raises(CallingError):
            read_vcf(io.StringIO("chr1\t5\t.\tA\n"))

    def test_pipeline_vcf_end_to_end(self, tmp_path):
        from repro import PipelineConfig, build_workload
        from repro.pipeline.gnumap import GnumapSnp

        wl = build_workload(scale="tiny", seed=71)
        result = GnumapSnp(wl.reference, PipelineConfig()).run(wl.reads)
        path = tmp_path / "calls.vcf"
        written, _ = write_vcf(path, result.snps, contig=wl.reference.name)
        records = read_vcf(path)
        assert written == len(records)
        called = {r.pos for r in records}
        assert called <= set(range(len(wl.reference)))
        assert len(called & set(wl.catalog.positions.tolist())) >= 1
