"""Tests for call records and the SNP report writer."""

import io

import pytest

from repro.calling.records import BaseCall, SNPCall, write_snp_calls
from repro.errors import CallingError


def mk_call(pos=5, top=2, second=0, het=False):
    return BaseCall(
        pos=pos,
        depth=11.5,
        top_channel=top,
        second_channel=second,
        stat=20.0,
        pvalue=1e-5,
        significant=True,
        heterozygous=het,
    )


class TestBaseCall:
    def test_hom_genotype(self):
        assert mk_call().genotype == (2,)

    def test_het_genotype_sorted(self):
        assert mk_call(top=3, second=1, het=True).genotype == (1, 3)


class TestSNPCall:
    def test_names(self):
        snp = SNPCall(pos=5, ref_base=0, call=mk_call())
        assert snp.ref_name == "A"
        assert snp.alt_name == "G"

    def test_het_name(self):
        snp = SNPCall(pos=5, ref_base=0, call=mk_call(top=3, second=1, het=True))
        assert snp.alt_name == "C/T"

    def test_position_mismatch_rejected(self):
        with pytest.raises(CallingError):
            SNPCall(pos=6, ref_base=0, call=mk_call(pos=5))


class TestWriter:
    def test_tsv_output(self):
        buf = io.StringIO()
        n = write_snp_calls(buf, [SNPCall(pos=5, ref_base=0, call=mk_call())])
        assert n == 1
        lines = buf.getvalue().splitlines()
        assert lines[0].startswith("pos\tref\talt")
        fields = lines[1].split("\t")
        assert fields[0] == "5" and fields[1] == "A" and fields[2] == "G"

    def test_empty(self):
        buf = io.StringIO()
        assert write_snp_calls(buf, []) == 0
        assert len(buf.getvalue().splitlines()) == 1

    def test_file_target(self, tmp_path):
        path = tmp_path / "snps.tsv"
        write_snp_calls(path, [SNPCall(pos=1, ref_base=1, call=mk_call(pos=1))])
        assert path.read_text().count("\n") == 2
