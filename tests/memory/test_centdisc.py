"""Tests for CENTDISC centroid discretisation."""

import numpy as np
import pytest

from repro.errors import AccumulatorError
from repro.memory.centdisc import (
    CentroidAccumulator,
    CentroidCodebook,
    default_codebook,
)


class TestCodebook:
    def test_structure(self):
        cb = default_codebook()
        assert cb.centroids.shape == (256, 5)
        # slot 0 is the empty state
        assert (cb.centroids[0] == 0).all()
        assert np.allclose(cb.centroids[1:].sum(axis=1), 1.0)

    def test_contains_pure_corners_and_uniform(self):
        cb = default_codebook()
        for ch in range(5):
            corner = np.zeros(5)
            corner[ch] = 1.0
            assert (np.abs(cb.centroids - corner).sum(axis=1) < 1e-9).any()
        assert (np.abs(cb.centroids - 0.2).sum(axis=1) < 1e-9).any()

    def test_transition_mixtures_over_represented(self):
        # count two-base mixtures: transition pairs (A/G, C/T) should have
        # at least as many codebook entries as any transversion pair
        cb = default_codebook()

        def pair_count(i, j):
            c = cb.centroids
            both = (c[:, i] > 0.05) & (c[:, j] > 0.05)
            others = np.delete(c, [i, j], axis=1).sum(axis=1) < 0.3
            return int((both & others).sum())

        ts = min(pair_count(0, 2), pair_count(1, 3))
        tv = max(pair_count(0, 1), pair_count(0, 3), pair_count(2, 1), pair_count(2, 3))
        assert ts >= tv

    def test_nearest_identity_on_centroids(self):
        cb = default_codebook()
        idx = cb.nearest(cb.centroids[1:])
        assert (idx == np.arange(1, 256)).all()

    def test_nearest_shape_validation(self):
        with pytest.raises(AccumulatorError):
            default_codebook().nearest(np.zeros((2, 4)))

    def test_reduce_table_consistency(self):
        cb = default_codebook()
        table = cb.reduce_table()
        assert table.shape == (256, 256)
        # symmetric by construction of the mixture
        assert (table == table.T).all()
        # self-merge is identity (nearest of c is c)
        diag = table[np.arange(256), np.arange(256)]
        assert (diag == np.arange(256)).all()
        # empty state merge keeps the other operand
        assert (table[0, :] == np.arange(256)).all()

    def test_custom_codebook_validation(self):
        with pytest.raises(AccumulatorError):
            CentroidCodebook(np.ones((10, 5)))
        bad = default_codebook().centroids.copy()
        bad[5] = 2.0
        with pytest.raises(AccumulatorError):
            CentroidCodebook(bad)


class TestCentroidAccumulator:
    def test_single_add_near_exact(self):
        acc = CentroidAccumulator(4)
        z = np.array([[0.9, 0.05, 0.05, 0, 0]])
        acc.add(np.array([1]), z)
        snap = acc.snapshot()
        assert snap[1].sum() == pytest.approx(1.0, rel=1e-5)
        assert abs(snap[1, 0] - 0.9) < 0.1

    def test_totals_exact_fractions_lossy(self):
        rng = np.random.default_rng(0)
        length = 100
        acc = CentroidAccumulator(length)
        ref = np.zeros((length, 5))
        for _ in range(20):
            pos = rng.integers(0, length, 30)
            z = rng.dirichlet([6, 1, 1, 1, 0.2], 30)
            acc.add(pos, z)
            np.add.at(ref, pos, z)
        snap = acc.snapshot()
        # totals are carried in the float and must match
        assert np.allclose(snap.sum(axis=1), ref.sum(axis=1), rtol=1e-4, atol=1e-3)
        # fractions are lossy — much lossier than CHARDISC
        rel = np.abs(snap - ref).sum() / ref.sum()
        assert 0.02 < rel < 0.6

    def test_lossier_than_chardisc(self):
        from repro.memory.chardisc import ByteAccumulator

        rng = np.random.default_rng(1)
        length = 150
        cent = CentroidAccumulator(length)
        byte = ByteAccumulator(length)
        ref = np.zeros((length, 5))
        for _ in range(25):
            pos = rng.integers(0, length, 40)
            z = rng.dirichlet([8, 1, 1, 1, 0.1], 40)
            cent.add(pos, z)
            byte.add(pos, z)
            np.add.at(ref, pos, z)
        err_cent = np.abs(cent.snapshot() - ref).sum()
        err_byte = np.abs(byte.snapshot() - ref).sum()
        assert err_cent > 3 * err_byte

    def test_merge_lut_vs_exact_close(self):
        rng = np.random.default_rng(2)
        a1 = CentroidAccumulator(60)
        b1 = CentroidAccumulator(60)
        pos = rng.integers(0, 60, 100)
        z = rng.dirichlet([5, 1, 1, 1, 0.2], 100)
        a1.add(pos[:50], z[:50])
        b1.add(pos[50:], z[50:])
        a2 = CentroidAccumulator.from_buffers(60, a1.to_buffers())
        b2 = CentroidAccumulator.from_buffers(60, b1.to_buffers())
        a1.merge(b1, use_lut=True)
        a2.merge(b2, use_lut=False)
        assert np.allclose(
            a1.snapshot().sum(axis=1), a2.snapshot().sum(axis=1), atol=1e-3
        )
        # the two merge paths agree to within quantisation noise
        diff = np.abs(a1.snapshot() - a2.snapshot()).sum() / max(a2.snapshot().sum(), 1)
        assert diff < 0.4

    def test_merge_different_codebooks_rejected(self):
        a = CentroidAccumulator(5, codebook=CentroidCodebook())
        b = CentroidAccumulator(5, codebook=CentroidCodebook())
        with pytest.raises(AccumulatorError):
            a.merge(b)

    def test_buffer_round_trip(self):
        rng = np.random.default_rng(3)
        acc = CentroidAccumulator(20)
        acc.add(rng.integers(0, 20, 30), rng.dirichlet(np.ones(5), 30))
        back = CentroidAccumulator.from_buffers(20, acc.to_buffers())
        assert np.allclose(back.snapshot(), acc.snapshot())

    def test_update_mode_validation(self):
        with pytest.raises(AccumulatorError):
            CentroidAccumulator(5, update_mode="bogus")

    def test_buffer_round_trip_preserves_mode(self):
        acc = CentroidAccumulator(5, update_mode="weighted")
        back = CentroidAccumulator.from_buffers(5, acc.to_buffers())
        assert back.update_mode == "weighted"
        lut = CentroidAccumulator(5, update_mode="lut")
        assert CentroidAccumulator.from_buffers(5, lut.to_buffers()).update_mode == "lut"

    def test_lut_update_is_recency_biased(self):
        """The paper's table-lookup update treats each add as half the
        evidence: after many A-adds, a couple of T-adds drag the state to
        ~50/50 — the mechanism behind Table III's accuracy collapse."""
        acc = CentroidAccumulator(1, update_mode="lut")
        a_unit = np.array([[1.0, 0, 0, 0, 0]])
        t_unit = np.array([[0, 0, 0, 1.0, 0]])
        for _ in range(20):
            acc.add(np.array([0]), a_unit)
        for _ in range(2):
            acc.add(np.array([0]), t_unit)
        snap = acc.snapshot()[0]
        # truth: 20 A vs 2 T (91% A); LUT state says T holds a huge share
        assert snap[3] / snap.sum() > 0.3

    def test_weighted_update_is_faithful(self):
        acc = CentroidAccumulator(1, update_mode="weighted")
        a_unit = np.array([[1.0, 0, 0, 0, 0]])
        t_unit = np.array([[0, 0, 0, 1.0, 0]])
        for _ in range(20):
            acc.add(np.array([0]), a_unit)
        for _ in range(2):
            acc.add(np.array([0]), t_unit)
        snap = acc.snapshot()[0]
        assert abs(snap[0] / snap.sum() - 20 / 22) < 0.1

    def test_factory_modes(self):
        from repro.memory.base import make_accumulator

        assert make_accumulator("CENTDISC", 5).update_mode == "lut"
        assert make_accumulator("CENTDISC_WEIGHTED", 5).update_mode == "weighted"

    def test_nbytes_smallest(self):
        from repro.memory.chardisc import ByteAccumulator
        from repro.memory.dense import DenseAccumulator

        n = 1000
        assert (
            CentroidAccumulator(n).nbytes()
            < ByteAccumulator(n).nbytes()
            < DenseAccumulator(n).nbytes()
        )
        assert CentroidAccumulator(n).nbytes() == n * (4 + 1)
