"""Tests for the NORM dense accumulator."""

import numpy as np
import pytest

from repro.errors import AccumulatorError
from repro.memory.base import make_accumulator
from repro.memory.dense import DenseAccumulator


class TestDenseAccumulator:
    def test_add_and_snapshot(self):
        acc = DenseAccumulator(10)
        acc.add(np.array([2, 5]), np.array([[1, 0, 0, 0, 0], [0, 2, 0, 0, 0.5]]))
        snap = acc.snapshot()
        assert snap[2, 0] == 1.0
        assert snap[5, 1] == 2.0
        assert snap[5, 4] == pytest.approx(0.5)
        assert snap.sum() == pytest.approx(3.5)

    def test_repeated_positions_in_one_batch(self):
        acc = DenseAccumulator(4)
        acc.add(np.array([1, 1, 1]), np.ones((3, 5)))
        assert acc.snapshot()[1].tolist() == [3.0] * 5

    def test_empty_add(self):
        acc = DenseAccumulator(4)
        acc.add(np.array([], dtype=np.int64), np.zeros((0, 5)))
        assert acc.snapshot().sum() == 0

    def test_validation(self):
        acc = DenseAccumulator(4)
        with pytest.raises(AccumulatorError):
            acc.add(np.array([9]), np.ones((1, 5)))
        with pytest.raises(AccumulatorError):
            acc.add(np.array([-1]), np.ones((1, 5)))
        with pytest.raises(AccumulatorError):
            acc.add(np.array([0]), np.ones((1, 4)))
        with pytest.raises(AccumulatorError):
            acc.add(np.array([0]), -np.ones((1, 5)))
        with pytest.raises(AccumulatorError):
            DenseAccumulator(0)

    def test_merge_equals_combined_adds(self):
        rng = np.random.default_rng(0)
        pos = rng.integers(0, 50, 200)
        z = rng.dirichlet([3, 1, 1, 1, 0.5], 200)
        a = DenseAccumulator(50)
        b = DenseAccumulator(50)
        full = DenseAccumulator(50)
        a.add(pos[:100], z[:100])
        b.add(pos[100:], z[100:])
        full.add(pos, z)
        a.merge(b)
        assert np.allclose(a.snapshot(), full.snapshot(), atol=1e-5)

    def test_merge_type_mismatch_rejected(self):
        a = DenseAccumulator(5)
        b = make_accumulator("CHARDISC", 5)
        with pytest.raises(AccumulatorError):
            a.merge(b)

    def test_merge_length_mismatch_rejected(self):
        with pytest.raises(AccumulatorError):
            DenseAccumulator(5).merge(DenseAccumulator(6))

    def test_buffer_round_trip(self):
        acc = DenseAccumulator(8)
        acc.add(np.array([3]), np.array([[0.5, 1, 0, 0, 0.25]]))
        back = DenseAccumulator.from_buffers(8, acc.to_buffers())
        assert np.allclose(back.snapshot(), acc.snapshot())

    def test_nbytes(self):
        assert DenseAccumulator(100).nbytes() == 100 * 5 * 4

    def test_total_depth(self):
        acc = DenseAccumulator(3)
        acc.add(np.array([1]), np.array([[1, 1, 1, 1, 1.0]]))
        assert acc.total_depth().tolist() == [0.0, 5.0, 0.0]

    def test_factory(self):
        assert isinstance(make_accumulator("norm", 5), DenseAccumulator)
        with pytest.raises(AccumulatorError):
            make_accumulator("wat", 5)
