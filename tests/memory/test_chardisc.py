"""Tests for CHARDISC nucleotide-byte discretisation."""

import numpy as np
import pytest

from repro.errors import AccumulatorError
from repro.memory.chardisc import ByteAccumulator, quantize_rows


class TestQuantizeRows:
    def test_sums_to_255_when_occupied(self):
        rng = np.random.default_rng(0)
        real = rng.dirichlet([1, 1, 1, 1, 1], size=50) * 10
        totals = real.sum(axis=1)
        q = quantize_rows(real, totals)
        assert (q.sum(axis=1) == 255).all()

    def test_zero_total_all_zero(self):
        q = quantize_rows(np.zeros((3, 5)), np.zeros(3))
        assert (q == 0).all()

    def test_error_bounded_by_one_step(self):
        rng = np.random.default_rng(1)
        real = rng.dirichlet([2, 1, 1, 1, 0.5], size=100) * 7
        totals = real.sum(axis=1)
        q = quantize_rows(real, totals)
        recon = q / 255.0 * totals[:, None]
        assert np.abs(recon - real).max() <= totals.max() / 255.0 + 1e-9

    def test_shape_validation(self):
        with pytest.raises(AccumulatorError):
            quantize_rows(np.zeros((2, 4)), np.zeros(2))


class TestPaperExamples:
    """The worked examples from the paper's Section VI-B.1."""

    def test_single_a(self):
        acc = ByteAccumulator(1)
        acc.add(np.array([0]), np.array([[1.0, 0, 0, 0, 0]]))
        total, bts = acc.byte_state()
        assert total[0] == pytest.approx(1.0)
        assert bts[0].tolist() == [255, 0, 0, 0, 0]

    def test_one_a_one_t(self):
        acc = ByteAccumulator(1)
        acc.add(np.array([0]), np.array([[1.0, 0, 0, 0, 0]]))
        acc.add(np.array([0]), np.array([[0, 0, 0, 1.0, 0]]))
        _, bts = acc.byte_state()
        # paper: [128, 0, 0, 127, 0]
        assert sorted(bts[0].tolist(), reverse=True)[:2] == [128, 127]
        assert bts[0][0] + bts[0][3] == 255

    def test_254_a_one_t(self):
        acc = ByteAccumulator(1)
        acc.add(np.array([0]), np.array([[254.0, 0, 0, 0, 0]]))
        acc.add(np.array([0]), np.array([[0, 0, 0, 1.0, 0]]))
        _, bts = acc.byte_state()
        assert bts[0][0] == 254
        assert bts[0][3] == 1

    def test_saturation_drops_new_signal(self):
        # beyond ~255 total, a single new read rounds to zero bytes
        acc = ByteAccumulator(1)
        acc.add(np.array([0]), np.array([[1000.0, 0, 0, 0, 0]]))
        acc.add(np.array([0]), np.array([[0, 0, 0, 1.0, 0]]))
        _, bts = acc.byte_state()
        assert bts[0][3] == 0  # the lone T vanished: the paper's saturation


class TestByteAccumulator:
    def test_approximates_dense(self):
        rng = np.random.default_rng(2)
        length = 200
        acc = ByteAccumulator(length)
        ref = np.zeros((length, 5))
        for _ in range(30):
            pos = rng.integers(0, length, 50)
            z = rng.dirichlet([6, 1, 1, 1, 0.3], 50)
            acc.add(pos, z)
            np.add.at(ref, pos, z)
        snap = acc.snapshot()
        assert np.allclose(snap.sum(axis=1), ref.sum(axis=1), atol=1e-3)
        # per-channel relative error small at moderate depth
        rel = np.abs(snap - ref).sum() / ref.sum()
        assert rel < 0.05

    def test_invariant_bytes_sum(self):
        rng = np.random.default_rng(3)
        acc = ByteAccumulator(50)
        for _ in range(10):
            acc.add(rng.integers(0, 50, 20), rng.dirichlet(np.ones(5), 20))
        total, bts = acc.byte_state()
        occupied = total > 0
        assert (bts[occupied].sum(axis=1) == 255).all()
        assert (bts[~occupied] == 0).all()

    def test_merge_close_to_dense_merge(self):
        rng = np.random.default_rng(4)
        a = ByteAccumulator(100)
        b = ByteAccumulator(100)
        za = rng.dirichlet([4, 1, 1, 1, 0.2], 300)
        zb = rng.dirichlet([1, 4, 1, 1, 0.2], 300)
        pa = rng.integers(0, 100, 300)
        pb = rng.integers(0, 100, 300)
        a.add(pa, za)
        b.add(pb, zb)
        expect = a.snapshot() + b.snapshot()
        a.merge(b)
        assert np.allclose(a.snapshot().sum(axis=1), expect.sum(axis=1), atol=1e-3)
        assert np.abs(a.snapshot() - expect).max() < expect.sum(axis=1).max() / 100

    def test_buffer_round_trip(self):
        rng = np.random.default_rng(5)
        acc = ByteAccumulator(20)
        acc.add(rng.integers(0, 20, 40), rng.dirichlet(np.ones(5), 40))
        back = ByteAccumulator.from_buffers(20, acc.to_buffers())
        assert np.allclose(back.snapshot(), acc.snapshot())
        t1, b1 = acc.byte_state()
        t2, b2 = back.byte_state()
        assert (b1 == b2).all()

    def test_nbytes_smaller_than_dense(self):
        from repro.memory.dense import DenseAccumulator

        assert ByteAccumulator(1000).nbytes() < DenseAccumulator(1000).nbytes()
        assert ByteAccumulator(1000).nbytes() == 1000 * (4 + 5)

    def test_total_depth_exact(self):
        acc = ByteAccumulator(5)
        acc.add(np.array([2, 2]), np.array([[1, 0, 0, 0, 0], [0, 0.5, 0, 0, 0]]))
        assert acc.total_depth()[2] == pytest.approx(1.5)
