"""Property-based tests over the accumulator implementations."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.base import make_accumulator
from repro.memory.chardisc import quantize_rows

MODES = ["NORM", "CHARDISC", "CENTDISC"]


@st.composite
def add_batches(draw, length=40, max_batches=5, max_rows=30):
    n_batches = draw(st.integers(min_value=1, max_value=max_batches))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    batches = []
    for _ in range(n_batches):
        rows = int(rng.integers(1, max_rows))
        pos = rng.integers(0, length, rows)
        z = rng.dirichlet([4, 1, 1, 1, 0.3], rows) * rng.uniform(0.2, 1.5, rows)[:, None]
        batches.append((pos, z))
    return batches


@settings(max_examples=25, deadline=None)
@given(batches=add_batches(), mode=st.sampled_from(MODES))
def test_total_mass_conserved(batches, mode):
    """Whatever the discretisation, per-position *totals* are exact."""
    length = 40
    acc = make_accumulator(mode, length)
    expect = np.zeros(length)
    for pos, z in batches:
        acc.add(pos, z)
        np.add.at(expect, pos, z.sum(axis=1))
    assert np.allclose(acc.total_depth(), expect, rtol=1e-4, atol=1e-3)


@settings(max_examples=25, deadline=None)
@given(batches=add_batches(), mode=st.sampled_from(MODES))
def test_snapshot_nonnegative_and_bounded(batches, mode):
    length = 40
    acc = make_accumulator(mode, length)
    for pos, z in batches:
        acc.add(pos, z)
    snap = acc.snapshot()
    assert (snap >= -1e-9).all()
    assert np.isfinite(snap).all()


@settings(max_examples=20, deadline=None)
@given(batches=add_batches(), mode=st.sampled_from(MODES))
def test_buffer_round_trip_identity(batches, mode):
    length = 40
    acc = make_accumulator(mode, length)
    for pos, z in batches:
        acc.add(pos, z)
    back = type(acc).from_buffers(length, acc.to_buffers())
    assert np.allclose(back.snapshot(), acc.snapshot())


@settings(max_examples=20, deadline=None)
@given(batches=add_batches(max_batches=4), mode=st.sampled_from(MODES))
def test_merge_conserves_totals(batches, mode):
    length = 40
    half = len(batches) // 2
    a = make_accumulator(mode, length)
    b = make_accumulator(mode, length)
    expect = np.zeros(length)
    for pos, z in batches[:half] or batches[:1]:
        a.add(pos, z)
        np.add.at(expect, pos, z.sum(axis=1))
    for pos, z in batches[half:]:
        b.add(pos, z)
        np.add.at(expect, pos, z.sum(axis=1))
    if half == 0:
        # batches[:1] was double-counted above when half == 0; recompute
        expect = np.zeros(length)
        for pos, z in batches[:1] + batches:
            np.add.at(expect, pos, z.sum(axis=1))
    a.merge(b)
    assert np.allclose(a.total_depth(), expect, rtol=1e-4, atol=1e-3)


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=2**31 - 1),
       st.integers(min_value=1, max_value=30))
def test_quantize_rows_invariants(seed, rows):
    rng = np.random.default_rng(seed)
    real = rng.dirichlet(np.ones(5), rows) * rng.uniform(0.01, 300, rows)[:, None]
    totals = real.sum(axis=1)
    q = quantize_rows(real, totals)
    assert (q.sum(axis=1) == 255).all()
    # reconstruction error bounded by one byte step per channel
    recon = q.astype(float) / 255 * totals[:, None]
    assert (np.abs(recon - real) <= totals[:, None] / 255 + 1e-9).all()
