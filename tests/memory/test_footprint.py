"""Tests for the analytic footprint model."""

import pytest

from repro.errors import AccumulatorError
from repro.memory.base import make_accumulator
from repro.memory.footprint import (
    CHRX_LENGTH,
    HUMAN_LENGTH,
    OPTIMIZATIONS,
    FootprintModel,
)


class TestProjection:
    def test_norm_chrx_matches_paper(self):
        model = FootprintModel()
        assert model.total_gb("NORM", CHRX_LENGTH) == pytest.approx(4.76, abs=0.05)

    def test_ordering(self):
        model = FootprintModel()
        for length in (CHRX_LENGTH, HUMAN_LENGTH):
            gbs = [model.total_gb(o, length) for o in OPTIMIZATIONS]
            assert gbs[0] > gbs[1] > gbs[2]

    def test_linear_in_genome_length(self):
        model = FootprintModel()
        assert model.total_gb("NORM", 2 * CHRX_LENGTH) == pytest.approx(
            2 * model.total_gb("NORM", CHRX_LENGTH)
        )

    def test_per_rank_division(self):
        model = FootprintModel()
        total = model.total_gb("NORM", HUMAN_LENGTH)
        assert model.per_rank_gb("NORM", HUMAN_LENGTH, 30) == pytest.approx(total / 30)

    def test_case_insensitive(self):
        model = FootprintModel()
        assert model.bytes_per_base("chardisc") == model.bytes_per_base("CHARDISC")

    def test_validation(self):
        model = FootprintModel()
        with pytest.raises(AccumulatorError):
            model.bytes_per_base("BOGUS")
        with pytest.raises(AccumulatorError):
            model.total_bytes("NORM", 0)
        with pytest.raises(AccumulatorError):
            model.per_rank_gb("NORM", 100, 0)


class TestMeasure:
    def test_measure_reports_components(self):
        acc = make_accumulator("CHARDISC", 1000)
        out = FootprintModel.measure(acc, genome_length=1000)
        assert out["accumulator_bytes"] == acc.nbytes()
        assert out["bytes_per_base"] == pytest.approx(acc.nbytes() / 1000)

    def test_measured_matches_model_accumulator_term(self):
        from repro.memory.footprint import ACCUMULATOR_BYTES

        for opt in OPTIMIZATIONS:
            acc = make_accumulator(opt, 10_000)
            assert acc.nbytes() / 10_000 == pytest.approx(ACCUMULATOR_BYTES[opt])
