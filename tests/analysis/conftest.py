"""Make the in-repo ``tools/`` directory importable (replint lives there).

The package under test is installed (or on ``PYTHONPATH=src``); replint is a
development tool shipped alongside the package, so the tests add ``tools/``
to ``sys.path`` themselves rather than requiring an install step.
"""

import sys
from pathlib import Path

_TOOLS = str(Path(__file__).resolve().parents[2] / "tools")
if _TOOLS not in sys.path:
    sys.path.insert(0, _TOOLS)
