"""Interprocedural project-pass tests: symbol table, call graph, dataflow.

Fixtures are synthetic multi-file packages fed through
:func:`replint.lint_files`, so module names derive from ``__init__.py``
entries in the file set without touching disk.  Several tests assert the
acceptance property explicitly: the same fixture linted with
``project=False`` (the old per-file engine) reports nothing.
"""

import ast
import textwrap

from replint import ReplintConfig, lint_files
from replint.callgraph import build_call_graph, worker_entry_points
from replint.symbols import build_symbol_table, module_name_for


def lint_project(files: dict, config=None, **kw):
    sources = [(path, textwrap.dedent(src)) for path, src in files.items()]
    return lint_files(sources, config, **kw)


def ids(findings) -> list:
    return [f.rule_id for f in findings]


def pkg(files: dict, root: str = "proj") -> dict:
    """Add the ``__init__.py`` chain for every directory under ``root``."""
    out = dict(files)
    for path in files:
        parts = path.split("/")[:-1]
        for i in range(len(parts)):
            out.setdefault("/".join(parts[: i + 1]) + "/__init__.py", "")
    return out


def table_for(files: dict):
    return build_symbol_table(
        [
            (path, textwrap.dedent(src), ast.parse(textwrap.dedent(src)))
            for path, src in pkg(files).items()
        ]
    )


class TestSymbolTable:
    def test_module_names_from_file_set(self):
        file_set = {"proj/__init__.py", "proj/sub/__init__.py", "proj/sub/mod.py"}
        assert module_name_for("proj/sub/mod.py", file_set) == "proj.sub.mod"
        assert module_name_for("proj/sub/__init__.py", file_set) == "proj.sub"
        assert module_name_for("loose.py", file_set) == "loose"

    def test_resolves_from_import(self):
        table = table_for(
            {
                "proj/a.py": "def helper():\n    return 1\n",
                "proj/b.py": "from proj.a import helper\n",
            }
        )
        fn = table.resolve_function("proj.b", "helper")
        assert fn is not None and fn.qualname == "proj.a.helper"

    def test_resolves_relative_import(self):
        table = table_for(
            {
                "proj/a.py": "def helper():\n    return 1\n",
                "proj/b.py": "from .a import helper as h\n",
            }
        )
        fn = table.resolve_function("proj.b", "h")
        assert fn is not None and fn.qualname == "proj.a.helper"

    def test_resolves_package_reexport(self):
        table = build_symbol_table(
            [
                ("proj/__init__.py", "from proj.core import run\n",
                 ast.parse("from proj.core import run\n")),
                ("proj/core.py", "def run():\n    return 1\n",
                 ast.parse("def run():\n    return 1\n")),
                ("use.py", "import proj\n", ast.parse("import proj\n")),
            ]
        )
        fn = table.resolve_function("use", "proj.run")
        assert fn is not None and fn.qualname == "proj.core.run"

    def test_methods_and_mutable_globals(self):
        table = table_for(
            {
                "proj/m.py": """
                _CACHE = {}
                LIMIT = 3

                class Engine:
                    def run(self):
                        return 1
                """,
            }
        )
        mod = table.modules["proj.m"]
        assert "Engine.run" in mod.functions
        assert list(mod.mutable_globals) == ["_CACHE"]
        fn = table.resolve_function("proj.m", "Engine.run")
        assert fn is not None and not fn.nested


class TestCallGraph:
    FILES = {
        "proj/a.py": """
        from proj.b import middle

        def entry(x):
            return middle(x)
        """,
        "proj/b.py": """
        from proj.c import leaf

        def middle(x):
            return leaf(x)
        """,
        "proj/c.py": """
        def leaf(x):
            return x
        """,
    }

    def test_reachability_with_path(self):
        table = table_for(self.FILES)
        graph = build_call_graph(table)
        reach = graph.reachable_from({"proj.a.entry"})
        assert reach["proj.c.leaf"] == (
            "proj.a.entry", "proj.b.middle", "proj.c.leaf",
        )

    def test_worker_roots_from_dispatch_site(self):
        table = table_for(
            {
                "proj/jobs.py": """
                def run_chunk(payload):
                    return payload

                def launch(ctx):
                    return ChunkDispatcher(ctx, 4, run_chunk)
                """,
            }
        )
        graph = build_call_graph(table)
        roots = worker_entry_points(table, graph, ReplintConfig())
        assert "proj.jobs.run_chunk" in roots
        assert "ChunkDispatcher" in roots["proj.jobs.run_chunk"]

    def test_worker_roots_from_config_glob(self):
        table = table_for({"proj/work.py": "def grind(x):\n    return x\n"})
        graph = build_call_graph(table)
        config = ReplintConfig(worker_entrypoints=["proj.work.*"])
        roots = worker_entry_points(table, graph, config)
        assert "proj.work.grind" in roots


class TestCrossCallDomainRPL101:
    FILES = {
        "proj/stats.py": """
        import numpy as np

        def normalise(x):
            return np.log(x)
        """,
        "proj/use.py": """
        import numpy as np
        from proj.stats import normalise

        def f(x):
            return np.log(normalise(x))
        """,
    }

    def test_per_file_engine_misses_it(self):
        assert lint_project(pkg(self.FILES), project=False) == []

    def test_project_pass_catches_cross_module_double_log(self):
        findings = lint_project(pkg(self.FILES))
        assert ids(findings) == ["RPL101"]
        assert "double log" in findings[0].message
        assert findings[0].path == "proj/use.py"

    def test_annotation_seeds_domain(self):
        findings = lint_project(
            pkg(
                {
                    "proj/a.py": """
                    def posterior(x):  # replint: returns=log
                        return x
                    """,
                    "proj/b.py": """
                    import numpy as np
                    from proj.a import posterior

                    def f(x):
                        return np.log(posterior(x))
                    """,
                }
            )
        )
        assert ids(findings) == ["RPL101"]

    def test_clean_exp_of_log_return(self):
        findings = lint_project(
            pkg(
                {
                    "proj/a.py": """
                    import numpy as np

                    def normalise(x):
                        return np.log(x)
                    """,
                    "proj/b.py": """
                    import numpy as np
                    from proj.a import normalise

                    def f(x):
                        return np.exp(normalise(x))
                    """,
                }
            )
        )
        assert findings == []

    def test_suppression(self):
        files = dict(self.FILES)
        files["proj/use.py"] = """
        import numpy as np
        from proj.stats import normalise

        def f(x):
            return np.log(normalise(x))  # replint: disable=RPL101
        """
        assert lint_project(pkg(files)) == []


class TestCrossCallDomainRPL102:
    FILES = {
        "proj/kernels.py": """
        def loglik(x):
            return x
        """,
        "proj/mix.py": """
        from proj.kernels import loglik

        def scale(weights):
            return weights

        def combine(x):
            return scale(loglik(x))
        """,
    }

    def test_per_file_engine_misses_it(self):
        assert lint_project(pkg(self.FILES), project=False) == []

    def test_log_return_into_linear_param(self):
        findings = lint_project(pkg(self.FILES))
        assert ids(findings) == ["RPL102"]
        assert "'weights'" in findings[0].message

    def test_param_annotation_overrides_name(self):
        files = dict(self.FILES)
        # The parameter is *named* like linear data but annotated log-domain,
        # so the handoff is consistent and nothing fires.
        files["proj/mix.py"] = """
        from proj.kernels import loglik

        def scale(weights):  # replint: param.weights=log
            return weights

        def combine(x):
            return scale(loglik(x))
        """
        assert lint_project(pkg(files)) == []

    def test_suppression(self):
        files = dict(self.FILES)
        files["proj/mix.py"] = """
        from proj.kernels import loglik

        def scale(weights):
            return weights

        def combine(x):
            return scale(loglik(x))  # replint: disable=RPL102
        """
        assert lint_project(pkg(files)) == []


class TestF32ContractEscapeRPL702:
    FILES = {
        "proj/phmm/wavefront.py": """
        import numpy as np

        def forward_f32(x):
            return x.astype(np.float32)
        """,
        "proj/pipeline/run.py": """
        from proj.phmm.wavefront import forward_f32

        def run(x):
            return forward_f32(x)
        """,
    }

    def test_per_file_engine_misses_it(self):
        assert lint_project(pkg(self.FILES), project=False) == []

    def test_f32_return_consumed_outside_contract(self):
        findings = lint_project(pkg(self.FILES))
        assert ids(findings) == ["RPL702"]
        assert findings[0].path == "proj/pipeline/run.py"
        assert "escalation contract" in findings[0].message

    def test_forwarding_helper_tracked_through_lattice(self):
        # A contract-internal helper that merely forwards the float32 array
        # still carries the width to its own callers.
        files = dict(self.FILES)
        files["proj/phmm/api.py"] = """
        from proj.phmm.wavefront import forward_f32

        def entry(x):
            return forward_f32(x)
        """
        files["proj/pipeline/run.py"] = """
        from proj.phmm.api import entry

        def run(x):
            return entry(x)
        """
        findings = lint_project(pkg(files))
        assert ids(findings) == ["RPL702"]
        assert "entry()" in findings[0].message

    def test_clean_consumer_inside_contract(self):
        files = dict(self.FILES)
        files["proj/phmm/banded.py"] = files.pop("proj/pipeline/run.py")
        assert lint_project(pkg(files)) == []

    def test_clean_widened_return(self):
        files = dict(self.FILES)
        files["proj/phmm/wavefront.py"] = """
        import numpy as np

        def forward_f32(x):
            return x.astype(np.float64)
        """
        assert lint_project(pkg(files)) == []

    def test_suppression(self):
        files = dict(self.FILES)
        files["proj/pipeline/run.py"] = """
        from proj.phmm.wavefront import forward_f32

        def run(x):
            return forward_f32(x)  # replint: disable=RPL702
        """
        assert lint_project(pkg(files)) == []


class TestWorkerGlobalMutationRPL801:
    FILES = {
        "proj/util/cache.py": """
        _CACHE = {}

        def remember(key, value):
            _CACHE[key] = value
        """,
        "proj/jobs.py": """
        from proj.util.cache import remember

        def run_chunk(payload):
            remember(payload, 1)

        def launch(ctx):
            return ChunkDispatcher(ctx, 4, run_chunk)
        """,
    }

    def test_per_file_engine_misses_it(self):
        # Neither module matches worker_modules, so per-file RPL301 is blind
        # to this — the mutation only matters because of the dispatch edge.
        assert lint_project(pkg(self.FILES), project=False) == []

    def test_mutation_reachable_from_worker_root(self):
        findings = lint_project(pkg(self.FILES))
        assert ids(findings) == ["RPL801"]
        assert findings[0].path == "proj/util/cache.py"
        assert "run_chunk -> remember" in findings[0].message

    def test_clean_state_through_arguments(self):
        files = dict(self.FILES)
        files["proj/util/cache.py"] = """
        def remember(cache, key, value):
            cache[key] = value
        """
        files["proj/jobs.py"] = """
        from proj.util.cache import remember

        def run_chunk(payload):
            remember({}, payload, 1)

        def launch(ctx):
            return ChunkDispatcher(ctx, 4, run_chunk)
        """
        assert lint_project(pkg(files)) == []

    def test_clean_without_dispatch_edge(self):
        files = dict(self.FILES)
        files["proj/jobs.py"] = """
        from proj.util.cache import remember

        def run_chunk(payload):
            remember(payload, 1)
        """
        assert lint_project(pkg(files)) == []

    def test_suppression_at_mutation_site(self):
        files = dict(self.FILES)
        files["proj/util/cache.py"] = """
        _CACHE = {}

        def remember(key, value):
            _CACHE[key] = value  # replint: disable=RPL801
        """
        assert lint_project(pkg(files)) == []


class TestForkUnsafeCaptureRPL802:
    def test_lambda_trigger(self):
        findings = lint_project(
            pkg(
                {
                    "proj/jobs.py": """
                    def launch(ctx):
                        return ChunkDispatcher(ctx, 4, lambda x: x)
                    """,
                }
            )
        )
        assert ids(findings) == ["RPL802"]
        assert "lambda" in findings[0].message

    def test_bound_method_trigger(self):
        findings = lint_project(
            pkg(
                {
                    "proj/jobs.py": """
                    class Driver:
                        def work(self, x):
                            return x

                        def go(self, ctx):
                            return ctx.Process(target=self.work)
                    """,
                }
            )
        )
        assert ids(findings) == ["RPL802"]
        assert "bound method self.work" in findings[0].message

    def test_nested_function_trigger(self):
        findings = lint_project(
            pkg(
                {
                    "proj/jobs.py": """
                    def launch(ctx):
                        def inner(x):
                            return x
                        return ctx.Process(target=inner)
                    """,
                }
            )
        )
        assert ids(findings) == ["RPL802"]
        assert "nested function inner()" in findings[0].message

    def test_clean_module_level_function(self):
        findings = lint_project(
            pkg(
                {
                    "proj/jobs.py": """
                    def run_chunk(payload):
                        return payload

                    def launch(ctx):
                        return ChunkDispatcher(ctx, 4, run_chunk)
                    """,
                }
            )
        )
        assert findings == []

    def test_clean_instance_attribute_holding_callable(self):
        # Regression guard: an attribute load is not a bound method — the
        # dispatcher pattern stores its module-level worker_fn on self.
        findings = lint_project(
            pkg(
                {
                    "proj/jobs.py": """
                    def _main(fn):
                        return fn()

                    class Dispatcher:
                        def __init__(self, fn):
                            self._fn = fn

                        def spawn(self, ctx):
                            return ctx.Process(target=_main, args=(self._fn,))
                    """,
                }
            )
        )
        assert findings == []

    def test_suppression(self):
        findings = lint_project(
            pkg(
                {
                    "proj/jobs.py": """
                    def launch(ctx):
                        return ChunkDispatcher(ctx, 4, lambda x: x)  # replint: disable=RPL802
                    """,
                }
            )
        )
        assert findings == []


class TestProjectPassPlumbing:
    def test_no_project_skips_interprocedural_rules(self):
        findings = lint_project(pkg(TestCrossCallDomainRPL101.FILES), project=False)
        assert findings == []

    def test_select_scopes_project_rules(self):
        files = pkg(TestWorkerGlobalMutationRPL801.FILES)
        assert ids(lint_project(files, ReplintConfig(select=["RPL801"]))) == ["RPL801"]
        assert lint_project(files, ReplintConfig(select=["RPL702"])) == []

    def test_syntax_error_file_does_not_break_project_pass(self):
        files = pkg(TestCrossCallDomainRPL101.FILES)
        files["proj/broken.py"] = "def broken(:\n"
        findings = lint_project(files)
        assert ids(findings) == ["RPL000", "RPL101"]
