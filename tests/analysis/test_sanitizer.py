"""Runtime numerical sanitizer: off by default, silent on clean runs,
loud (with span attribution) on corrupted values.

The seeded-fault tests patch a kernel/accumulator to inject a NaN exactly as
a numerical bug would, and assert the sanitizer converts the silent
corruption into a :class:`repro.errors.SanitizerError` naming the check and
the pipeline stage.
"""

import numpy as np
import pytest

from repro.errors import ReproError, SanitizerError
from repro.experiments.workload import build_workload
from repro.memory.dense import DenseAccumulator
from repro.observability import span
from repro.phmm import sanitize
from repro.phmm.forward_backward import emissions_batch, forward_batch
from repro.phmm.model import PHMMParams
from repro.pipeline.config import PipelineConfig
from repro.pipeline.gnumap import GnumapSnp


@pytest.fixture(autouse=True)
def sanitizer_off_after():
    """Every test leaves the process-global switch as it found it."""
    prev = sanitize.enabled()
    yield
    if prev:
        sanitize.enable()
    else:
        sanitize.disable()


@pytest.fixture(scope="module")
def workload():
    wl = build_workload(scale="tiny", seed=77)
    wl.reads = wl.reads[:120]
    return wl


class TestActivation:
    def test_off_by_default(self):
        # REPRO_SANITIZE is not set in the test environment.
        assert not sanitize.enabled()

    def test_enable_disable(self):
        sanitize.enable()
        assert sanitize.enabled()
        sanitize.disable()
        assert not sanitize.enabled()

    def test_sanitized_context_restores(self):
        with sanitize.sanitized():
            assert sanitize.enabled()
            with sanitize.sanitized(on=False):
                assert not sanitize.enabled()
            assert sanitize.enabled()
        assert not sanitize.enabled()

    def test_cli_flag_enables(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["call", "ref.fa", "reads.fq", "--sanitize"])
        assert args.sanitize is True
        args = build_parser().parse_args(["call", "ref.fa", "reads.fq"])
        assert args.sanitize is False


class TestChecks:
    def test_check_finite_accepts_clean(self):
        sanitize.check_finite("t", "x", np.ones(4))

    def test_check_finite_rejects_nan(self):
        with pytest.raises(SanitizerError, match="non-finite"):
            sanitize.check_finite("t", "x", np.array([1.0, np.nan]))

    def test_check_finite_neg_inf_policy(self):
        arr = np.array([0.0, -np.inf])
        sanitize.check_finite("t", "x", arr, allow_neg_inf=True)
        with pytest.raises(SanitizerError):
            sanitize.check_finite("t", "x", arr)

    def test_check_non_negative(self):
        with pytest.raises(SanitizerError, match="negative probability mass"):
            sanitize.check_non_negative("t", "x", np.array([0.5, -1e-3]))

    def test_check_emissions_rejects_above_one(self):
        pstar = np.full((1, 2, 2), 0.5)
        sanitize.check_emissions(pstar)
        pstar[0, 1, 1] = 1.5
        with pytest.raises(SanitizerError, match="exceeds 1"):
            sanitize.check_emissions(pstar)

    def test_check_z_unit_mass(self):
        z = np.full((1, 3, 5), 0.2)  # sums to exactly 1 per position
        sanitize.check_z(z)
        z[0, 1, :] = 0.3  # 1.5 total
        with pytest.raises(SanitizerError, match="exceeds 1"):
            sanitize.check_z(z)

    def test_check_z_valid_mask_excuses_padding(self):
        z = np.zeros((1, 2, 5))
        z[0, 1, :] = 0.5  # 2.5 total, but masked out
        valid = np.array([[True, False]])
        sanitize.check_z(z, valid)

    def test_check_accumulator(self):
        with pytest.raises(SanitizerError, match="evidence"):
            sanitize.check_accumulator(np.array([[np.nan] * 5]), where="accumulator.add")

    def test_error_is_reproerror_with_context(self):
        with span("map_reads"):
            with span("align"):
                with pytest.raises(SanitizerError) as exc_info:
                    sanitize.check_finite("forward", "fM", np.array([np.nan]))
        err = exc_info.value
        assert isinstance(err, ReproError)
        assert err.check == "forward"
        assert err.span_path == ("map_reads", "align")
        assert "map_reads/align" in str(err)


class TestKernelHooks:
    PARAMS = PHMMParams()

    def _pstar(self) -> np.ndarray:
        rng = np.random.default_rng(5)
        return rng.uniform(0.01, 0.95, size=(2, 6, 10))

    def test_forward_clean_passes_when_enabled(self):
        pstar = self._pstar()
        with sanitize.sanitized():
            result = forward_batch(pstar, self.PARAMS)
        assert np.isfinite(result.loglik).all()

    def test_corrupted_forward_raises_only_when_enabled(self, monkeypatch):
        """Seeded fault: the kernel returns a NaN-poisoned matrix."""
        import repro.phmm.forward_backward as fb

        real_lfilter = fb.lfilter

        def poisoned_lfilter(*args, **kwargs):
            out = real_lfilter(*args, **kwargs)
            if isinstance(out, np.ndarray) and out.size:
                out = out.copy()
                out.flat[0] = np.nan
            return out

        monkeypatch.setattr(fb, "lfilter", poisoned_lfilter)
        pstar = self._pstar()
        # Default mode: the corruption flows through silently.
        result = forward_batch(pstar, self.PARAMS)
        assert np.isnan(result.fM).any() or np.isnan(result.loglik).any()
        # Sanitized mode: the same fault is caught at the kernel boundary.
        with sanitize.sanitized():
            with pytest.raises(SanitizerError, match="forward"):
                forward_batch(pstar, self.PARAMS)

    def test_emission_corruption_attributed_to_stage(self, workload, monkeypatch):
        """A poisoned emission kernel fails inside map_reads/align."""
        import repro.phmm.alignment as alignment

        def poisoned_emissions(pwms, windows, params):
            out = emissions_batch(pwms, windows, params)
            out = out.copy()
            out.flat[0] = np.nan
            return out

        monkeypatch.setattr(alignment, "emissions_batch", poisoned_emissions)
        pipe = GnumapSnp(workload.reference, PipelineConfig())
        with sanitize.sanitized():
            with pytest.raises(SanitizerError) as exc_info:
                pipe.map_reads(workload.reads)
        assert exc_info.value.check == "emissions"
        assert "align" in exc_info.value.span_path


class TestAccumulatorHooks:
    def test_corrupted_add_raises_when_enabled(self):
        acc = DenseAccumulator(8)
        positions = np.array([1, 2], dtype=np.int64)
        z = np.full((2, 5), 0.1)
        z[1, 3] = np.nan
        # Default: NaN slips past the (z < 0) guard.
        acc.add(positions, z.copy())
        assert np.isnan(acc.snapshot()).any()
        # Sanitized: caught at the add boundary.
        acc2 = DenseAccumulator(8)
        with sanitize.sanitized():
            with pytest.raises(SanitizerError, match="accumulator.add"):
                acc2.add(positions, z.copy())

    def test_clean_add_unaffected(self):
        acc = DenseAccumulator(8)
        positions = np.array([1, 2], dtype=np.int64)
        z = np.full((2, 5), 0.1)
        with sanitize.sanitized():
            acc.add(positions, z)
        assert acc.snapshot().sum() == pytest.approx(1.0)


class TestEndToEnd:
    def test_clean_run_identical_with_sanitizer(self, workload):
        """The sanitizer is observe-only: enabling it changes nothing."""
        config = PipelineConfig()
        plain = GnumapSnp(workload.reference, config).run(workload.reads)
        with sanitize.sanitized():
            checked = GnumapSnp(workload.reference, config).run(workload.reads)
        assert {(s.pos, s.alt_name) for s in checked.snps} == {
            (s.pos, s.alt_name) for s in plain.snps
        }
        assert np.allclose(
            checked.accumulator.snapshot(), plain.accumulator.snapshot()
        )

    def test_snapshot_check_catches_poisoned_accumulator(self, workload):
        config = PipelineConfig()
        pipe = GnumapSnp(workload.reference, config)
        acc, _ = pipe.map_reads(workload.reads)
        acc.add(np.array([0], dtype=np.int64), np.full((1, 5), 0.1))
        # Poison the stored evidence directly (as a buggy merge would).
        acc._z[0, 0] = np.inf
        with sanitize.sanitized():
            with pytest.raises(SanitizerError, match="accumulator.snapshot"):
                pipe.call_snps(acc)
