"""CLI, configuration, and whole-tree tests for replint.

The final test in this module is the enforcement hook: the repository's own
``src`` tree must lint clean, mirroring what CI runs.
"""

import json
import re
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from replint import ReplintConfig, __version__, lint_file, lint_paths, load_config
from replint.cli import main
from replint.findings import Finding, render_json, render_sarif, render_text
from replint.rules import ALL_RULES, KNOWN_RULE_IDS, PROJECT_RULES, RULES_BY_ID

REPO_ROOT = Path(__file__).resolve().parents[2]

TRIGGER = textwrap.dedent(
    """
    import numpy as np

    def f():
        return np.random.normal(size=3)
    """
)

CLEAN = textwrap.dedent(
    """
    def f(rng):
        return rng.normal(size=3)
    """
)


class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text(CLEAN)
        assert main([str(tmp_path)]) == 0
        assert capsys.readouterr().out == ""

    def test_findings_exit_one_with_report(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text(TRIGGER)
        assert main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "RPL201" in out
        assert "1 finding(s) in 1 file(s)" in out

    def test_json_format(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text(TRIGGER)
        (tmp_path / "ok.py").write_text(CLEAN)
        assert main([str(tmp_path), "--format", "json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "replint/v1"
        assert doc["version"] == __version__
        assert doc["files_checked"] == 2
        assert [f["rule_id"] for f in doc["findings"]] == ["RPL201"]
        finding = doc["findings"][0]
        assert {"path", "line", "col", "rule_id", "rule_name", "message"} <= set(finding)

    def test_select_limits_rules(self, tmp_path):
        (tmp_path / "mod.py").write_text(TRIGGER)
        assert main([str(tmp_path), "--select", "RPL401"]) == 0
        assert main([str(tmp_path), "--select", "RPL201"]) == 1

    def test_unknown_select_is_usage_error(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text(CLEAN)
        assert main([str(tmp_path), "--select", "RPL999"]) == 2
        assert "unknown rule id" in capsys.readouterr().err

    def test_no_files_is_usage_error(self, tmp_path, capsys):
        assert main([str(tmp_path / "empty")]) == 2
        assert "no Python files" in capsys.readouterr().err

    def test_list_rules_catalogue(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule.rule_id in out
            assert rule.rule_name in out

    def test_sarif_format(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text(TRIGGER)
        assert main([str(tmp_path), "--format", "sarif"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "replint"
        assert [r["ruleId"] for r in run["results"]] == ["RPL201"]
        region = run["results"][0]["locations"][0]["physicalLocation"]["region"]
        assert region["startColumn"] >= 1  # SARIF columns are 1-based

    def test_sarif_rule_catalogue_covers_known_ids(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text(CLEAN)
        assert main([str(tmp_path), "--format", "sarif"]) == 0
        doc = json.loads(capsys.readouterr().out)
        listed = {r["id"] for r in doc["runs"][0]["tool"]["driver"]["rules"]}
        assert KNOWN_RULE_IDS <= listed

    def test_stats_line(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text(TRIGGER)
        assert main([str(tmp_path), "--stats"]) == 1
        err = capsys.readouterr().err
        assert re.search(
            r"^replint-stats: files=1 findings=1 seconds=\d+\.\d\d project=on$",
            err,
            re.M,
        )

    def test_stats_reports_project_off(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text(CLEAN)
        assert main([str(tmp_path), "--stats", "--no-project"]) == 0
        assert "project=off" in capsys.readouterr().err

    def test_select_accepts_project_rule_ids(self, tmp_path):
        (tmp_path / "mod.py").write_text(CLEAN)
        assert main([str(tmp_path), "--select", "RPL801"]) == 0

    def test_audit_reports_stale_suppression(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text(
            "def f(x):\n    return x  # replint: disable=RPL201\n"
        )
        assert main([str(tmp_path)]) == 0
        assert main([str(tmp_path), "--audit-suppressions"]) == 1
        out = capsys.readouterr().out
        assert "RPL900" in out
        assert "matched no finding" in out

    def test_audit_quiet_when_suppression_used(self, tmp_path):
        (tmp_path / "mod.py").write_text(
            "import numpy as np\n\n"
            "def f():\n"
            "    return np.random.normal()  # replint: disable=RPL201\n"
        )
        assert main([str(tmp_path), "--audit-suppressions"]) == 0

    def test_unreadable_file_reported_not_fatal(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text(CLEAN)
        (tmp_path / "bad.py").write_bytes(b"\xff\xfe\x00broken")
        assert main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "RPL000" in out
        assert "cannot read file" in out
        assert "bad.py" in out

    def test_list_rules_includes_project_passes(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in PROJECT_RULES:
            assert rule.rule_id in out
        assert "(project pass)" in out

    def test_module_entrypoint(self, tmp_path):
        (tmp_path / "mod.py").write_text(TRIGGER)
        proc = subprocess.run(
            [sys.executable, "-m", "replint", str(tmp_path)],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(REPO_ROOT / "tools"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 1
        assert "RPL201" in proc.stdout


class TestConfig:
    def test_defaults_when_missing(self, tmp_path):
        config = load_config(tmp_path / "absent.toml")
        assert config == ReplintConfig()

    def test_loads_table(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(
            '[tool.replint]\nworker-modules = ["*/w/*.py"]\nselect = ["RPL401"]\n'
        )
        config = load_config(pyproject)
        assert config.worker_modules == ["*/w/*.py"]
        assert config.rule_selected("RPL401")
        assert not config.rule_selected("RPL201")

    def test_unknown_key_rejected(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text('[tool.replint]\nworker_modlues = ["x"]\n')
        with pytest.raises(ValueError, match="unknown"):
            load_config(pyproject)

    def test_non_list_value_rejected(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text('[tool.replint]\nexclude = "src"\n')
        with pytest.raises(ValueError, match="list of strings"):
            load_config(pyproject)

    def test_repo_pyproject_parses(self):
        config = load_config(REPO_ROOT / "pyproject.toml")
        assert config.is_kernel_module("src/repro/phmm/forward_backward.py")
        assert config.is_worker_module("src/repro/parallel/comm.py")
        assert config.is_rng_sanctioned("src/repro/util/rng.py")

    def test_exclude(self, tmp_path):
        (tmp_path / "mod.py").write_text(TRIGGER)
        config = ReplintConfig(exclude=["*/mod.py"])
        assert lint_paths([tmp_path], config) == []


class TestRenderers:
    FINDING = Finding(
        path="src/x.py", line=3, col=4, rule_id="RPL201",
        rule_name="unseeded-rng", message="msg",
    )

    def test_text_line_format(self):
        assert self.FINDING.text() == "src/x.py:3:4: RPL201 [unseeded-rng] msg"

    def test_render_text_empty(self):
        assert render_text([]) == ""

    def test_render_json_roundtrip(self):
        doc = json.loads(render_json([self.FINDING], files_checked=7, version="1.0.0"))
        assert doc["files_checked"] == 7
        assert doc["findings"][0]["rule_id"] == "RPL201"

    def test_render_sarif_location(self):
        doc = json.loads(render_sarif([self.FINDING], version="2.0.0"))
        result = doc["runs"][0]["results"][0]
        loc = result["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"] == "src/x.py"
        assert loc["region"] == {"startLine": 3, "startColumn": 5}
        assert "unseeded-rng" in result["message"]["text"]

    def test_render_sarif_empty_is_valid(self):
        doc = json.loads(render_sarif([], version="2.0.0"))
        assert doc["runs"][0]["results"] == []


class TestUnreadableFiles:
    def test_lint_file_unreadable(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_bytes(b"\xff\xfe\x00broken")
        findings = lint_file(bad)
        assert [f.rule_id for f in findings] == ["RPL000"]
        assert "cannot read file" in findings[0].message

    def test_lint_paths_keeps_going_past_unreadable(self, tmp_path):
        (tmp_path / "bad.py").write_bytes(b"\xff\xfe\x00broken")
        (tmp_path / "mod.py").write_text(TRIGGER)
        findings = lint_paths([tmp_path])
        assert sorted(f.rule_id for f in findings) == ["RPL000", "RPL201"]


class TestRegistry:
    def test_at_least_five_rules(self):
        assert len(RULES_BY_ID) >= 5

    def test_ids_unique_and_documented(self):
        assert len({r.rule_id for r in ALL_RULES}) == len(ALL_RULES)
        for rule in ALL_RULES:
            assert type(rule).__doc__
            assert rule.rule_id.startswith("RPL")

    def test_project_rules_documented_and_known(self):
        for rule in PROJECT_RULES:
            assert type(rule).__doc__
            assert hasattr(rule, "check_project")
            assert set(rule.rule_ids) <= KNOWN_RULE_IDS


class TestRepositoryTree:
    def test_src_lints_clean(self):
        config = load_config(REPO_ROOT / "pyproject.toml")
        findings = lint_paths([REPO_ROOT / "src"], config)
        assert findings == [], "\n" + "\n".join(f.text() for f in findings)

    def test_tools_lint_clean(self):
        config = load_config(REPO_ROOT / "pyproject.toml")
        findings = lint_paths([REPO_ROOT / "tools"], config)
        assert findings == [], "\n" + "\n".join(f.text() for f in findings)

    def test_benchmarks_lint_clean(self):
        config = load_config(REPO_ROOT / "pyproject.toml")
        findings = lint_paths([REPO_ROOT / "benchmarks"], config)
        assert findings == [], "\n" + "\n".join(f.text() for f in findings)

    def test_src_has_no_stale_suppressions(self):
        config = load_config(REPO_ROOT / "pyproject.toml")
        findings = lint_paths([REPO_ROOT / "src"], config, audit=True)
        assert findings == [], "\n" + "\n".join(f.text() for f in findings)
