"""CLI, configuration, and whole-tree tests for replint.

The final test in this module is the enforcement hook: the repository's own
``src`` tree must lint clean, mirroring what CI runs.
"""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from replint import ReplintConfig, __version__, lint_paths, load_config
from replint.cli import main
from replint.findings import Finding, render_json, render_text
from replint.rules import ALL_RULES, RULES_BY_ID

REPO_ROOT = Path(__file__).resolve().parents[2]

TRIGGER = textwrap.dedent(
    """
    import numpy as np

    def f():
        return np.random.normal(size=3)
    """
)

CLEAN = textwrap.dedent(
    """
    def f(rng):
        return rng.normal(size=3)
    """
)


class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text(CLEAN)
        assert main([str(tmp_path)]) == 0
        assert capsys.readouterr().out == ""

    def test_findings_exit_one_with_report(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text(TRIGGER)
        assert main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "RPL201" in out
        assert "1 finding(s) in 1 file(s)" in out

    def test_json_format(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text(TRIGGER)
        (tmp_path / "ok.py").write_text(CLEAN)
        assert main([str(tmp_path), "--format", "json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "replint/v1"
        assert doc["version"] == __version__
        assert doc["files_checked"] == 2
        assert [f["rule_id"] for f in doc["findings"]] == ["RPL201"]
        finding = doc["findings"][0]
        assert {"path", "line", "col", "rule_id", "rule_name", "message"} <= set(finding)

    def test_select_limits_rules(self, tmp_path):
        (tmp_path / "mod.py").write_text(TRIGGER)
        assert main([str(tmp_path), "--select", "RPL401"]) == 0
        assert main([str(tmp_path), "--select", "RPL201"]) == 1

    def test_unknown_select_is_usage_error(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text(CLEAN)
        assert main([str(tmp_path), "--select", "RPL999"]) == 2
        assert "unknown rule id" in capsys.readouterr().err

    def test_no_files_is_usage_error(self, tmp_path, capsys):
        assert main([str(tmp_path / "empty")]) == 2
        assert "no Python files" in capsys.readouterr().err

    def test_list_rules_catalogue(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule.rule_id in out
            assert rule.rule_name in out

    def test_module_entrypoint(self, tmp_path):
        (tmp_path / "mod.py").write_text(TRIGGER)
        proc = subprocess.run(
            [sys.executable, "-m", "replint", str(tmp_path)],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(REPO_ROOT / "tools"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 1
        assert "RPL201" in proc.stdout


class TestConfig:
    def test_defaults_when_missing(self, tmp_path):
        config = load_config(tmp_path / "absent.toml")
        assert config == ReplintConfig()

    def test_loads_table(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(
            '[tool.replint]\nworker-modules = ["*/w/*.py"]\nselect = ["RPL401"]\n'
        )
        config = load_config(pyproject)
        assert config.worker_modules == ["*/w/*.py"]
        assert config.rule_selected("RPL401")
        assert not config.rule_selected("RPL201")

    def test_unknown_key_rejected(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text('[tool.replint]\nworker_modlues = ["x"]\n')
        with pytest.raises(ValueError, match="unknown"):
            load_config(pyproject)

    def test_non_list_value_rejected(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text('[tool.replint]\nexclude = "src"\n')
        with pytest.raises(ValueError, match="list of strings"):
            load_config(pyproject)

    def test_repo_pyproject_parses(self):
        config = load_config(REPO_ROOT / "pyproject.toml")
        assert config.is_kernel_module("src/repro/phmm/forward_backward.py")
        assert config.is_worker_module("src/repro/parallel/comm.py")
        assert config.is_rng_sanctioned("src/repro/util/rng.py")

    def test_exclude(self, tmp_path):
        (tmp_path / "mod.py").write_text(TRIGGER)
        config = ReplintConfig(exclude=["*/mod.py"])
        assert lint_paths([tmp_path], config) == []


class TestRenderers:
    FINDING = Finding(
        path="src/x.py", line=3, col=4, rule_id="RPL201",
        rule_name="unseeded-rng", message="msg",
    )

    def test_text_line_format(self):
        assert self.FINDING.text() == "src/x.py:3:4: RPL201 [unseeded-rng] msg"

    def test_render_text_empty(self):
        assert render_text([]) == ""

    def test_render_json_roundtrip(self):
        doc = json.loads(render_json([self.FINDING], files_checked=7, version="1.0.0"))
        assert doc["files_checked"] == 7
        assert doc["findings"][0]["rule_id"] == "RPL201"


class TestRegistry:
    def test_at_least_five_rules(self):
        assert len(RULES_BY_ID) >= 5

    def test_ids_unique_and_documented(self):
        assert len({r.rule_id for r in ALL_RULES}) == len(ALL_RULES)
        for rule in ALL_RULES:
            assert type(rule).__doc__
            assert rule.rule_id.startswith("RPL")


class TestRepositoryTree:
    def test_src_lints_clean(self):
        config = load_config(REPO_ROOT / "pyproject.toml")
        findings = lint_paths([REPO_ROOT / "src"], config)
        assert findings == [], "\n" + "\n".join(f.text() for f in findings)

    def test_tools_lint_clean(self):
        config = load_config(REPO_ROOT / "pyproject.toml")
        findings = lint_paths([REPO_ROOT / "tools"], config)
        assert findings == [], "\n" + "\n".join(f.text() for f in findings)
