"""Per-rule replint tests: a trigger, a clean pass, and a suppression each.

Snippets are linted through :func:`replint.lint_source` with synthetic paths
so the path-scoped rules (worker/kernel/RNG-sanctioned modules) can be
exercised against the default configuration.
"""

import textwrap

from replint import ReplintConfig, lint_source

GENERIC = "src/repro/pipeline/example.py"
KERNEL = "src/repro/phmm/example.py"
WORKER = "src/repro/parallel/example.py"
RNG_HOME = "src/repro/util/rng.py"


def lint(snippet: str, path: str = GENERIC, config: "ReplintConfig | None" = None):
    return lint_source(textwrap.dedent(snippet), path, config)


def ids(findings) -> list:
    return [f.rule_id for f in findings]


class TestRPL101DomainMixCall:
    def test_trigger_double_log(self):
        findings = lint(
            """
            import numpy as np

            def f(loglik):
                return np.log(loglik)
            """
        )
        assert ids(findings) == ["RPL101"]
        assert "double log" in findings[0].message
        assert findings[0].line == 5

    def test_trigger_exp_of_linear(self):
        findings = lint(
            """
            import numpy as np

            def f(weights):
                return np.exp(weights)
            """
        )
        assert ids(findings) == ["RPL101"]

    def test_clean(self):
        findings = lint(
            """
            import numpy as np

            def f(loglik, weights):
                a = np.exp(loglik)
                b = np.log(weights)
                return a, b
            """
        )
        assert findings == []

    def test_suppression(self):
        findings = lint(
            """
            import numpy as np

            def f(loglik):
                return np.log(loglik)  # replint: disable=RPL101
            """
        )
        assert findings == []


class TestRPL102DomainMixArith:
    def test_trigger_log_plus_linear(self):
        findings = lint(
            """
            def f(loglik, weights):
                return loglik + weights
            """
        )
        assert ids(findings) == ["RPL102"]

    def test_clean_same_domain(self):
        findings = lint(
            """
            import numpy as np

            def f(loglik, log_prior, weights):
                a = loglik + log_prior
                b = loglik + np.log(weights)
                return a, b
            """
        )
        assert findings == []

    def test_unclassified_operands_not_flagged(self):
        findings = lint(
            """
            def f(a, b):
                return a + b
            """
        )
        assert findings == []

    def test_suppression(self):
        findings = lint(
            """
            def f(loglik, weights):
                return loglik + weights  # replint: disable=RPL102
            """
        )
        assert findings == []


class TestRPL201UnseededRng:
    def test_trigger(self):
        findings = lint(
            """
            import numpy as np

            def f():
                return np.random.normal(size=3)
            """
        )
        assert ids(findings) == ["RPL201"]
        assert "np.random.normal" in findings[0].message

    def test_trigger_default_rng(self):
        findings = lint(
            """
            import numpy as np

            def f():
                return np.random.default_rng(0)
            """
        )
        assert ids(findings) == ["RPL201"]

    def test_clean_generator_api(self):
        findings = lint(
            """
            def f(rng):
                return rng.normal(size=3)
            """
        )
        assert findings == []

    def test_sanctioned_module_exempt(self):
        findings = lint(
            """
            import numpy as np

            def resolve_rng(seed):
                return np.random.default_rng(seed)
            """,
            path=RNG_HOME,
        )
        assert findings == []

    def test_suppression(self):
        findings = lint(
            """
            import numpy as np

            def f():
                return np.random.default_rng(0)  # replint: disable=RPL201
            """
        )
        assert findings == []


class TestRPL301WorkerSharedState:
    SNIPPET = """
    _CACHE = {}

    def worker(task):
        _CACHE[task.key] = task
        return _CACHE
    """

    def test_trigger_in_worker_module(self):
        findings = lint(self.SNIPPET, path=WORKER)
        assert set(ids(findings)) == {"RPL301"}
        assert "_CACHE" in findings[0].message

    def test_same_code_outside_worker_module_clean(self):
        findings = lint(self.SNIPPET, path=GENERIC)
        assert findings == []

    def test_clean_state_through_arguments(self):
        findings = lint(
            """
            def worker(task, cache):
                cache[task.key] = task
                return cache
            """,
            path=WORKER,
        )
        assert findings == []

    def test_immutable_module_constant_clean(self):
        findings = lint(
            """
            BATCH = 256

            def worker(tasks):
                return tasks[:BATCH]
            """,
            path=WORKER,
        )
        assert findings == []

    def test_global_statement_flagged(self):
        findings = lint(
            """
            _STATE = dict()

            def init():
                global _STATE
            """,
            path=WORKER,
        )
        assert "RPL301" in ids(findings)

    def test_suppression(self):
        findings = lint(
            """
            _WORKER = {}

            def init(payload):
                _WORKER["payload"] = payload  # replint: disable=RPL301
            """,
            path=WORKER,
        )
        assert findings == []


class TestRPL401BroadExcept:
    def test_trigger_except_exception(self):
        findings = lint(
            """
            def f():
                try:
                    return work()
                except Exception:
                    return None
            """
        )
        assert ids(findings) == ["RPL401"]

    def test_trigger_bare_except(self):
        findings = lint(
            """
            def f():
                try:
                    return work()
                except:
                    return None
            """
        )
        assert ids(findings) == ["RPL401"]
        assert "bare except" in findings[0].message

    def test_trigger_in_tuple(self):
        findings = lint(
            """
            def f():
                try:
                    return work()
                except (ValueError, Exception):
                    return None
            """
        )
        assert ids(findings) == ["RPL401"]

    def test_clean_specific(self):
        findings = lint(
            """
            def f():
                try:
                    return work()
                except (ValueError, KeyError):
                    return None
            """
        )
        assert findings == []

    def test_boundary_module_exempt(self):
        config = ReplintConfig(boundary_modules=["*/pipeline/example.py"])
        findings = lint(
            """
            def f():
                try:
                    return work()
                except Exception:
                    return None
            """,
            config=config,
        )
        assert findings == []

    def test_suppression(self):
        findings = lint(
            """
            def f():
                try:
                    return work()
                except Exception:  # replint: disable=RPL401
                    return None
            """
        )
        assert findings == []


class TestRPL501UnguardedReductionLog:
    def test_trigger_in_kernel_module(self):
        findings = lint(
            """
            import numpy as np

            def loglik(f):
                return np.log(f.sum(axis=1))
            """,
            path=KERNEL,
        )
        assert ids(findings) == ["RPL501"]

    def test_same_code_outside_kernel_clean(self):
        findings = lint(
            """
            import numpy as np

            def loglik(f):
                return np.log(f.sum(axis=1))
            """,
            path=GENERIC,
        )
        assert findings == []

    def test_clean_under_errstate(self):
        findings = lint(
            """
            import numpy as np

            def loglik(f):
                with np.errstate(divide="ignore"):
                    return np.log(f.sum(axis=1))
            """,
            path=KERNEL,
        )
        assert findings == []

    def test_guard_survives_nesting(self):
        findings = lint(
            """
            import numpy as np

            def loglik(f, mask):
                with np.errstate(divide="ignore"):
                    if mask.any():
                        return np.log(f.sum(axis=1))
                return 0.0
            """,
            path=KERNEL,
        )
        assert findings == []

    def test_log_of_plain_value_clean(self):
        findings = lint(
            """
            import numpy as np

            def f(weights):
                return np.log(weights)
            """,
            path=KERNEL,
        )
        assert findings == []

    def test_suppression(self):
        findings = lint(
            """
            import numpy as np

            def loglik(f):
                return np.log(f.sum(axis=1))  # replint: disable=RPL501
            """,
            path=KERNEL,
        )
        assert findings == []


class TestRPL601MetricNameGrammar:
    def test_trigger_no_subsystem_prefix(self):
        findings = lint(
            """
            from repro.observability import current

            def f():
                current().inc("reads")
            """
        )
        assert ids(findings) == ["RPL601"]
        assert "subsystem.metric grammar" in findings[0].message

    def test_trigger_not_snake_case(self):
        findings = lint(
            """
            import repro.observability.trace as trace

            def f():
                trace.instant("MP.chunkRetry")
            """
        )
        assert ids(findings) == ["RPL601"]

    def test_trigger_unregistered_prefix(self):
        findings = lint(
            """
            from repro.observability import current

            def f(x):
                current().observe("zz.latency", x)
            """
        )
        assert ids(findings) == ["RPL601"]
        assert "unregistered subsystem prefix 'zz'" in findings[0].message

    def test_dynamic_names_out_of_scope(self):
        findings = lint(
            """
            from repro.observability import current

            def f(prefix):
                current().inc(f"{prefix}.chunk_retries")
            """
        )
        assert findings == []

    def test_clean_registered_names(self):
        findings = lint(
            """
            import repro.observability.trace as trace
            from repro.observability import current

            def f(x):
                current().inc("mp.worker_deaths")
                current().observe("phmm.pair_cells", x)
                trace.counter_sample("pipeline.reads", 1)
            """
        )
        assert findings == []

    def test_clean_telemetry_plane_names(self):
        """The live-telemetry names ride the existing mp/obs prefixes —
        the grammar accepts them without any vocabulary growth."""
        findings = lint(
            """
            import repro.observability.trace as trace
            from repro.observability import current

            def f(age):
                current().gauge_max("mp.worker_heartbeat_age_seconds_max", age)
                current().inc("mp.worker_stalls")
                current().inc("obs.telemetry_deltas")
                current().inc("obs.telemetry_decode_errors")
                trace.instant("mp.worker_stall", pid=1)
            """
        )
        assert findings == []

    def test_trigger_telemetry_name_off_grammar(self):
        """A hypothetical dedicated 'livetel' subsystem is not in the
        registered vocabulary; the watchdog counter must stay under mp.*"""
        findings = lint(
            """
            from repro.observability import current

            def f(age):
                current().gauge_max("livetel.heartbeat_age", age)
            """
        )
        assert ids(findings) == ["RPL601"]
        assert "unregistered subsystem prefix 'livetel'" in findings[0].message

    def test_suppression(self):
        findings = lint(
            """
            from repro.observability import current

            def f():
                current().inc("reads")  # replint: disable=RPL601
            """
        )
        assert findings == []


class TestRPL701DtypeNarrowing:
    SNIPPET = """
    import numpy as np

    def forward(x):
        return x.astype(np.float32)
    """

    def test_trigger_in_kernel_module(self):
        findings = lint(self.SNIPPET, path=KERNEL)
        assert ids(findings) == ["RPL701"]
        assert "astype" in findings[0].message

    def test_trigger_dtype_kwarg(self):
        findings = lint(
            """
            import numpy as np

            def alloc(n):
                return np.zeros(n, dtype="float32")
            """,
            path=KERNEL,
        )
        assert ids(findings) == ["RPL701"]
        assert "dtype=float32" in findings[0].message

    def test_trigger_constructor(self):
        findings = lint(
            """
            import numpy as np

            def one():
                return np.float32(1.0)
            """,
            path=KERNEL,
        )
        assert ids(findings) == ["RPL701"]

    def test_sanctioned_module_exempt(self):
        findings = lint(self.SNIPPET, path="src/repro/phmm/wavefront.py")
        assert findings == []

    def test_same_code_outside_kernel_clean(self):
        findings = lint(self.SNIPPET, path=GENERIC)
        assert findings == []

    def test_widening_clean(self):
        findings = lint(
            """
            import numpy as np

            def widen(x):
                return x.astype(np.float64)
            """,
            path=KERNEL,
        )
        assert findings == []

    def test_suppression(self):
        findings = lint(
            """
            import numpy as np

            def forward(x):
                return x.astype(np.float32)  # replint: disable=RPL701
            """,
            path=KERNEL,
        )
        assert findings == []


class TestRPL803SharedMemoryScope:
    def test_trigger_unowned_handle(self):
        findings = lint(
            """
            from multiprocessing.shared_memory import SharedMemory

            def leak(n):
                shm = SharedMemory(create=True, size=n)
                return shm.name
            """
        )
        assert ids(findings) == ["RPL803"]
        assert "owning scope" in findings[0].message

    def test_trigger_import_module_spelling(self):
        findings = lint(
            """
            from multiprocessing import shared_memory

            def leak(n):
                shared_memory.SharedMemory(create=True, size=n)
            """
        )
        assert ids(findings) == ["RPL803"]

    def test_clean_context_manager(self):
        findings = lint(
            """
            from multiprocessing.shared_memory import SharedMemory

            def ok(name):
                with SharedMemory(name=name) as shm:
                    return bytes(shm.buf)
            """
        )
        assert findings == []

    def test_clean_closed_in_scope(self):
        findings = lint(
            """
            from multiprocessing.shared_memory import SharedMemory

            def ok(n):
                shm = SharedMemory(create=True, size=n)
                try:
                    return bytes(shm.buf)
                finally:
                    shm.close()
            """
        )
        assert findings == []

    def test_clean_returned_handle(self):
        findings = lint(
            """
            from multiprocessing.shared_memory import SharedMemory

            def make(n):
                shm = SharedMemory(create=True, size=n)
                return shm
            """
        )
        assert findings == []

    def test_clean_stored_on_owner(self):
        findings = lint(
            """
            from multiprocessing.shared_memory import SharedMemory

            class Pool:
                def __init__(self, n):
                    self._shm = SharedMemory(create=True, size=n)
            """
        )
        assert findings == []

    def test_no_import_no_findings(self):
        findings = lint(
            """
            def f(SharedMemory, n):
                SharedMemory(create=True, size=n)
            """
        )
        assert findings == []

    def test_suppression(self):
        findings = lint(
            """
            from multiprocessing.shared_memory import SharedMemory

            def leak(n):
                shm = SharedMemory(create=True, size=n)  # replint: disable=RPL803
                return shm.name
            """
        )
        assert findings == []


class TestSuppressionMechanics:
    def test_disable_all(self):
        findings = lint(
            """
            import numpy as np

            def f():
                return np.random.normal()  # replint: disable=all
            """
        )
        assert findings == []

    def test_wrong_id_does_not_suppress(self):
        findings = lint(
            """
            import numpy as np

            def f():
                return np.random.normal()  # replint: disable=RPL401
            """
        )
        assert ids(findings) == ["RPL201"]

    def test_multiple_ids(self):
        findings = lint(
            """
            import numpy as np

            def f(loglik):
                return np.log(loglik) + np.random.normal()  # replint: disable=RPL101, RPL201
            """
        )
        assert findings == []

    def test_multiple_ids_one_stale(self):
        # The listed-but-unmatched ID does not block the matching one.
        findings = lint(
            """
            import numpy as np

            def f(loglik):
                return np.log(loglik)  # replint: disable=RPL101,RPL301
            """
        )
        assert findings == []

    def test_suppression_on_decorated_def(self):
        # The finding sits on a decorator line of a decorated def; the
        # suppression must match there, not on the def line below.
        findings = lint(
            """
            import numpy as np

            def register(rng):
                def wrap(fn):
                    return fn
                return wrap

            @register(np.random.default_rng(0))  # replint: disable=RPL201
            def f():
                return 1
            """
        )
        assert findings == []


class TestParseError:
    def test_syntax_error_reported_as_rpl000(self):
        findings = lint("def broken(:\n")
        assert ids(findings) == ["RPL000"]
        assert findings[0].rule_name == "parse-error"
