"""Unit tests for the fault-tolerant chunk dispatcher.

These exercise the supervisor directly with tiny arithmetic workers — no
genome pipeline — so each recovery path (remote error, worker death, hang
past deadline, rejected partial, exhausted retries, failed init) is pinned
in isolation.  The fork start method keeps the workers cheap and lets the
worker functions live in this module; the spawn path is covered end-to-end
in ``tests/pipeline/test_mp_backend.py``.
"""

import multiprocessing as mp
import os
import time

import pytest

from repro.observability import scope
from repro.parallel.dispatch import ChunkDispatcher

pytestmark = pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(),
    reason="fork start method unavailable",
)


def _square(payload, chunk_id, attempt):
    return payload * payload


def _fail_chunk1_first_attempt(payload, chunk_id, attempt):
    if chunk_id == 1 and attempt == 0:
        raise ValueError("transient boom")
    return payload


def _crash_chunk0_first_attempt(payload, chunk_id, attempt):
    if chunk_id == 0 and attempt == 0:
        os._exit(70)
    return payload


def _hang_chunk0_first_attempt(payload, chunk_id, attempt):
    if chunk_id == 0 and attempt == 0:
        time.sleep(30.0)
    return payload


def _always_fail_chunk2(payload, chunk_id, attempt):
    if chunk_id == 2:
        raise ValueError("persistent boom")
    return payload


def _bad_init():
    raise RuntimeError("init exploded")


def _dispatcher(worker_fn, **kwargs):
    kwargs.setdefault("timeout", 30.0)
    kwargs.setdefault("backoff_base", 0.01)
    return ChunkDispatcher(
        mp.get_context("fork"), 2, worker_fn, **kwargs
    )


class TestHappyPath:
    def test_all_chunks_complete(self):
        outcome = _dispatcher(_square).run([1, 2, 3, 4, 5])
        assert outcome.results == {0: 1, 1: 4, 2: 9, 3: 16, 4: 25}
        assert outcome.fallback == []
        assert outcome.events == []
        assert outcome.retries == 0

    def test_empty_payloads(self):
        outcome = _dispatcher(_square).run([])
        assert outcome.results == {}
        assert outcome.fallback == []


class TestRecovery:
    def test_remote_error_is_retried(self):
        with scope() as reg:
            outcome = _dispatcher(_fail_chunk1_first_attempt).run([10, 20, 30])
        assert outcome.results == {0: 10, 1: 20, 2: 30}
        assert outcome.retries == 1
        assert [e.kind for e in outcome.events] == ["error"]
        assert outcome.events[0].chunk_id == 1
        snap = reg.snapshot()
        assert snap.counter("mp.chunk_errors") == 1
        assert snap.counter("mp.chunk_retries") == 1

    def test_worker_death_is_retried_on_fresh_worker(self):
        with scope() as reg:
            outcome = _dispatcher(_crash_chunk0_first_attempt).run([7, 8, 9])
        assert outcome.results == {0: 7, 1: 8, 2: 9}
        kinds = [e.kind for e in outcome.events]
        assert kinds == ["crash"]
        snap = reg.snapshot()
        assert snap.counter("mp.worker_deaths") == 1
        assert snap.counter("mp.chunk_retries") == 1

    def test_hang_past_deadline_is_killed_and_retried(self):
        with scope() as reg:
            outcome = _dispatcher(
                _hang_chunk0_first_attempt, timeout=1.0
            ).run([1, 2])
        assert outcome.results == {0: 1, 1: 2}
        assert [e.kind for e in outcome.events] == ["timeout"]
        snap = reg.snapshot()
        assert snap.counter("mp.chunk_timeouts") == 1

    def test_exhausted_retries_degrade_to_fallback(self):
        with scope() as reg:
            outcome = _dispatcher(
                _always_fail_chunk2, max_retries=1
            ).run([1, 2, 3, 4])
        assert outcome.results == {0: 1, 1: 2, 3: 4}
        assert outcome.fallback == [2]
        # attempt 0 failed and was retried; attempt 1 failed and fell back.
        assert [e.kind for e in outcome.events] == ["error", "error"]
        assert reg.snapshot().counter("mp.chunk_retries") == 1

    def test_rejected_partial_is_retried(self):
        rejected = []

        def validate(chunk_id, result):
            if chunk_id == 0 and not rejected:
                rejected.append(chunk_id)
                raise ValueError("corrupt partial")

        with scope() as reg:
            outcome = _dispatcher(_square, validate=validate).run([3, 4])
        assert outcome.results == {0: 9, 1: 16}
        assert [e.kind for e in outcome.events] == ["partial_reject"]
        assert reg.snapshot().counter("mp.partial_rejects") == 1

    def test_deterministic_init_failure_degrades_everything(self):
        outcome = _dispatcher(_square, initializer=_bad_init).run([1, 2, 3])
        assert outcome.results == {}
        assert sorted(outcome.fallback) == [0, 1, 2]
        kinds = {e.kind for e in outcome.events}
        assert "init_error" in kinds
        assert "no_workers" in kinds


class TestCounterPrefix:
    def test_custom_prefix(self):
        with scope() as reg:
            _dispatcher(
                _fail_chunk1_first_attempt, counter_prefix="online"
            ).run([1, 2])
        snap = reg.snapshot()
        assert snap.counter("online.chunk_retries") == 1
        assert snap.counter("mp.chunk_retries") == 0
