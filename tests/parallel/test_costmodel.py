"""Tests for the LogGP cost model and payload sizing."""

import numpy as np
import pytest

from repro.errors import CommError
from repro.parallel.costmodel import FREE, LogGPModel, payload_nbytes


class TestPayloadNbytes:
    def test_numpy_array(self):
        assert payload_nbytes(np.zeros(10, dtype=np.float64)) == 80

    def test_dict_of_arrays(self):
        buffers = {"a": np.zeros(5, dtype=np.float32), "b": np.zeros(3, dtype=np.uint8)}
        assert payload_nbytes(buffers) == 23

    def test_list_of_arrays(self):
        assert payload_nbytes([np.zeros(2), np.zeros(3)]) == 40

    def test_python_object_via_pickle(self):
        assert payload_nbytes({"x": 1}) > 0
        assert payload_nbytes(None) > 0

    def test_bigger_object_bigger_payload(self):
        assert payload_nbytes("a" * 1000) > payload_nbytes("a")


class TestLogGPModel:
    def test_p2p_linear_in_size(self):
        m = LogGPModel(latency=1e-4, byte_time=1e-8)
        assert m.p2p_time(0) == pytest.approx(1e-4)
        assert m.p2p_time(10**6) == pytest.approx(1e-4 + 1e-2)

    def test_collective_log_scaling(self):
        m = LogGPModel(latency=1e-4, byte_time=0)
        assert m.bcast_time(1, 100) == 0.0
        assert m.bcast_time(2, 100) == pytest.approx(1e-4)
        assert m.bcast_time(8, 100) == pytest.approx(3e-4)
        assert m.bcast_time(9, 100) == pytest.approx(4e-4)

    def test_allreduce_is_twice_reduce(self):
        m = LogGPModel()
        assert m.allreduce_time(8, 1000) == pytest.approx(2 * m.reduce_time(8, 1000))

    def test_gather_payload_doubles(self):
        m = LogGPModel(latency=0.0, byte_time=1e-9)
        # rounds with payload 1x, 2x, 4x -> total 7x
        assert m.gather_time(8, 1000) == pytest.approx(7e-6)
        assert m.scatter_time(8, 1000) == m.gather_time(8, 1000)

    def test_allgather_includes_bcast(self):
        m = LogGPModel()
        assert m.allgather_time(4, 100) > m.gather_time(4, 100)

    def test_barrier_is_empty_allreduce(self):
        m = LogGPModel()
        assert m.barrier_time(16) == pytest.approx(m.allreduce_time(16, 0))

    def test_free_model_zero(self):
        assert FREE.p2p_time(10**9) == 0.0
        assert FREE.allreduce_time(32, 10**9) == 0.0

    def test_validation(self):
        with pytest.raises(CommError):
            LogGPModel(latency=-1)
        with pytest.raises(CommError):
            LogGPModel().p2p_time(-1)
        with pytest.raises(CommError):
            LogGPModel().bcast_time(0, 10)
