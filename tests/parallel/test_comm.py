"""Tests for the thread-backed communicator (semantics and virtual time)."""

import numpy as np
import pytest

from repro.errors import CommError
from repro.parallel.cluster import Cluster
from repro.parallel.comm import make_world
from repro.parallel.costmodel import FREE, LogGPModel


def run(n_ranks, program, cost=None, timeout=20.0):
    return Cluster(n_ranks, cost, timeout=timeout).run(program)


class TestPointToPoint:
    def test_send_recv_value(self):
        def program(comm):
            if comm.rank == 0:
                comm.send({"v": 42}, dest=1)
                return None
            return comm.recv(source=0)

        res = run(2, program)
        assert res.results[1] == {"v": 42}

    def test_numpy_payload(self):
        def program(comm):
            if comm.rank == 0:
                comm.send(np.arange(5), dest=1, tag=3)
                return None
            return comm.recv(source=0, tag=3).sum()

        assert run(2, program).results[1] == 10

    def test_tag_matching(self):
        def program(comm):
            if comm.rank == 0:
                comm.send("b", dest=1, tag=2)
                comm.send("a", dest=1, tag=1)
                return None
            first = comm.recv(source=0, tag=1)
            second = comm.recv(source=0, tag=2)
            return (first, second)

        assert run(2, program).results[1] == ("a", "b")

    def test_self_send_rejected(self):
        def program(comm):
            comm.send(1, dest=comm.rank)

        with pytest.raises(CommError):
            run(1, program)

    def test_invalid_ranks_rejected(self):
        def program(comm):
            comm.send(1, dest=99)

        with pytest.raises(CommError):
            run(2, program)

    def test_recv_timeout_raises(self):
        def program(comm):
            if comm.rank == 1:
                comm.recv(source=0)  # never sent

        with pytest.raises(CommError):
            run(2, program, timeout=1.0)

    def test_virtual_time_p2p(self):
        cost = LogGPModel(latency=0.5, byte_time=0.0)

        def program(comm):
            if comm.rank == 0:
                comm.send("x", dest=1)
                return comm.clock.now
            comm.recv(source=0)
            return comm.clock.now

        res = run(2, program, cost)
        assert res.results[0] == pytest.approx(0.0)
        assert res.results[1] == pytest.approx(0.5)


class TestCollectives:
    def test_bcast(self):
        def program(comm):
            return comm.bcast("hello" if comm.rank == 0 else None, root=0)

        assert run(3, program).results == ["hello"] * 3

    def test_bcast_nonzero_root(self):
        def program(comm):
            return comm.bcast(comm.rank if comm.rank == 2 else None, root=2)

        assert run(3, program).results == [2, 2, 2]

    def test_scatter_gather(self):
        def program(comm):
            got = comm.scatter(
                [r * 10 for r in range(comm.size)] if comm.rank == 0 else None
            )
            back = comm.gather(got + 1, root=0)
            return back

        res = run(4, program)
        assert res.results[0] == [1, 11, 21, 31]
        assert res.results[1] is None

    def test_allgather(self):
        def program(comm):
            return comm.allgather(comm.rank**2)

        assert run(4, program).results == [[0, 1, 4, 9]] * 4

    def test_allreduce_sum(self):
        def program(comm):
            return comm.allreduce(comm.rank + 1, op=lambda a, b: a + b)

        assert run(4, program).results == [10] * 4

    def test_reduce_rank_order_deterministic(self):
        def program(comm):
            # string concat is order-sensitive: must be rank order
            return comm.reduce(str(comm.rank), op=lambda a, b: a + b, root=0)

        assert run(4, program).results[0] == "0123"

    def test_allreduce_numpy(self):
        def program(comm):
            return comm.allreduce(np.full(3, comm.rank, dtype=float),
                                  op=lambda a, b: a + b)

        res = run(3, program)
        assert np.allclose(res.results[0], [3, 3, 3])

    def test_scatter_wrong_count_rejected(self):
        def program(comm):
            comm.scatter([1] if comm.rank == 0 else None)

        with pytest.raises(CommError):
            run(2, program, timeout=2.0)

    def test_barrier_synchronises_clocks(self):
        cost = LogGPModel(latency=1e-3, byte_time=0)

        def program(comm):
            comm.account_compute(0.1 * comm.rank)
            comm.barrier()
            return comm.clock.now

        res = run(4, program, cost)
        # all ranks end at the slowest rank's time plus barrier cost
        assert len(set(round(t, 9) for t in res.results)) == 1
        assert res.results[0] >= 0.3

    def test_collective_virtual_cost_scales_with_payload(self):
        big = np.zeros(10**6)
        small = np.zeros(10)
        cost = LogGPModel(latency=0, byte_time=1e-9)

        def program_payload(comm, payload):
            comm.bcast(payload if comm.rank == 0 else None)
            return comm.clock.now

        t_big = Cluster(2, cost).run(program_payload, big).results[0]
        t_small = Cluster(2, cost).run(program_payload, small).results[0]
        assert t_big > t_small * 100

    def test_sequential_collectives_no_crosstalk(self):
        def program(comm):
            a = comm.allreduce(1, op=lambda x, y: x + y)
            b = comm.allgather(comm.rank)
            c = comm.bcast("z" if comm.rank == 0 else None)
            return (a, b, c)

        res = run(3, program)
        assert res.results == [(3, [0, 1, 2], "z")] * 3


class TestSplit:
    def test_subgroups_partition_ranks(self):
        def program(comm):
            sub = comm.split(color=comm.rank % 2)
            return (sub.rank, sub.size, comm.rank % 2)

        res = run(5, program)
        evens = [r for r in res.results if r[2] == 0]
        odds = [r for r in res.results if r[2] == 1]
        assert sorted(r[0] for r in evens) == [0, 1, 2]
        assert all(r[1] == 3 for r in evens)
        assert sorted(r[0] for r in odds) == [0, 1]
        assert all(r[1] == 2 for r in odds)

    def test_subgroup_collectives_independent(self):
        def program(comm):
            sub = comm.split(color=comm.rank // 2)
            return sub.allreduce(comm.rank, op=lambda a, b: a + b)

        res = run(4, program)
        assert res.results == [1, 1, 5, 5]

    def test_key_orders_subranks(self):
        def program(comm):
            # reverse order within the single group
            sub = comm.split(color=0, key=-comm.rank)
            return sub.rank

        res = run(3, program)
        assert res.results == [2, 1, 0]

    def test_clock_shared_with_parent(self):
        cost = LogGPModel(latency=1e-3, byte_time=0)

        def program(comm):
            sub = comm.split(color=0)
            sub.barrier()
            return comm.clock.now is not None and comm.clock is sub.clock

        assert all(run(3, program, cost).results)

    def test_p2p_within_subgroup(self):
        def program(comm):
            sub = comm.split(color=comm.rank // 2)
            if sub.size == 2:
                if sub.rank == 0:
                    sub.send(comm.rank, dest=1)
                    return None
                return sub.recv(source=0)
            return None

        res = run(4, program)
        assert res.results[1] == 0 and res.results[3] == 2


class TestWorldConstruction:
    def test_make_world_size(self):
        world = make_world(4)
        assert [c.rank for c in world] == [0, 1, 2, 3]
        assert all(c.size == 4 for c in world)

    def test_bad_size_rejected(self):
        with pytest.raises(CommError):
            make_world(0)
