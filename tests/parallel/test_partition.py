"""Tests for read/genome partitioners."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PartitionError
from repro.parallel.partition import (
    partition_reads_contiguous,
    partition_reads_round_robin,
    take,
    validate_partition,
)


class TestContiguous:
    def test_tiles_exactly(self):
        parts = partition_reads_contiguous(10, 3)
        validate_partition(parts, 10)
        sizes = [len(p) for p in parts]
        assert max(sizes) - min(sizes) <= 1

    def test_more_ranks_than_items(self):
        parts = partition_reads_contiguous(2, 5)
        validate_partition(parts, 2)
        assert sum(len(p) for p in parts) == 2

    def test_empty_items(self):
        parts = partition_reads_contiguous(0, 3)
        assert all(len(p) == 0 for p in parts)

    def test_validation(self):
        with pytest.raises(PartitionError):
            partition_reads_contiguous(5, 0)
        with pytest.raises(PartitionError):
            partition_reads_contiguous(-1, 2)


class TestRoundRobin:
    def test_tiles_exactly(self):
        parts = partition_reads_round_robin(11, 4)
        validate_partition(parts, 11)

    def test_stride_pattern(self):
        parts = partition_reads_round_robin(8, 3)
        assert list(parts[0]) == [0, 3, 6]
        assert list(parts[1]) == [1, 4, 7]
        assert list(parts[2]) == [2, 5]

    def test_validation(self):
        with pytest.raises(PartitionError):
            partition_reads_round_robin(5, 0)


class TestHelpers:
    def test_take(self):
        items = list("abcdef")
        assert take(items, range(1, 4)) == ["b", "c", "d"]

    def test_validate_rejects_overlap(self):
        with pytest.raises(PartitionError, match="duplicated"):
            validate_partition([range(0, 3), range(2, 5)], 5)

    def test_validate_rejects_gap(self):
        with pytest.raises(PartitionError, match="missing"):
            validate_partition([range(0, 2), range(3, 5)], 5)

    def test_validate_rejects_out_of_range(self):
        with pytest.raises(PartitionError, match="out of range"):
            validate_partition([range(0, 6)], 5)

    def test_validate_rejects_negative_index(self):
        with pytest.raises(PartitionError, match="out of range"):
            validate_partition([range(-1, 4), range(4, 5)], 5)

    def test_validate_accepts_strided_tiling(self):
        # Round-robin style strided ranges tile without materialising a
        # contiguous block — the vectorised path must handle step > 1.
        validate_partition([range(0, 10, 2), range(1, 10, 2)], 10)

    def test_validate_empty_ranges_ignored(self):
        validate_partition([range(0, 5), range(5, 5), range(5, 5)], 5)

    def test_validate_scales_to_large_counts(self):
        n = 500_000
        validate_partition(partition_reads_contiguous(n, 7), n)
        validate_partition(partition_reads_round_robin(n, 7), n)


@settings(max_examples=50, deadline=None)
@given(
    n_items=st.integers(min_value=0, max_value=500),
    n_ranks=st.integers(min_value=1, max_value=40),
    scheme=st.sampled_from(["contiguous", "round_robin"]),
)
def test_cover_disjoint_property(n_items, n_ranks, scheme):
    fn = (
        partition_reads_contiguous
        if scheme == "contiguous"
        else partition_reads_round_robin
    )
    validate_partition(fn(n_items, n_ranks), n_items)
