"""Tests for the deterministic fault-injection plan and spec grammar."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.parallel.faults import (
    EMPTY_PLAN,
    FaultClause,
    FaultPlan,
    corrupt_buffers,
    parse_fault_spec,
    resolve_fault_plan,
)


class TestSpecGrammar:
    def test_empty_spec_is_noop_plan(self):
        plan = parse_fault_spec("")
        assert plan is EMPTY_PLAN
        assert not plan
        assert parse_fault_spec("  ;  ") is EMPTY_PLAN

    def test_bare_mode(self):
        plan = parse_fault_spec("crash")
        assert plan
        assert plan.clauses == (FaultClause(mode="crash"),)

    def test_full_clause(self):
        plan = parse_fault_spec("hang:chunk=3,times=2,secs=7.5")
        (clause,) = plan.clauses
        assert clause.mode == "hang"
        assert clause.chunk == 3
        assert clause.times == 2
        assert clause.secs == 7.5

    def test_multiple_clauses_keep_order(self):
        plan = parse_fault_spec("crash:chunk=0 ; corrupt:chunk=1")
        assert [c.mode for c in plan.clauses] == ["crash", "corrupt"]
        assert [c.chunk for c in plan.clauses] == [0, 1]

    def test_whitespace_and_case_tolerated(self):
        plan = parse_fault_spec(" CRASH : Chunk = 2 ")
        assert plan.clauses[0].mode == "crash"
        assert plan.clauses[0].chunk == 2

    @pytest.mark.parametrize(
        "spec",
        [
            "segfault",                  # unknown mode
            "crash:chunks=1",            # unknown key
            "crash:chunk",               # missing =value
            "crash:chunk=x",             # non-integer value
            "crash:times=0",             # times < 1
            "crash:chunk=-1",            # negative chunk
            "crash:p=0",                 # p outside (0, 1]
            "crash:p=1.5",
            "hang:secs=0",               # non-positive hang
        ],
    )
    def test_bad_specs_raise_config_error(self, spec):
        with pytest.raises(ConfigError):
            parse_fault_spec(spec)


class TestFiring:
    def test_pinned_chunk_fires_only_there(self):
        clause = FaultClause(mode="crash", chunk=2)
        assert clause.fires(2, 0)
        assert not clause.fires(1, 0)

    def test_times_bounds_attempts(self):
        clause = FaultClause(mode="crash", chunk=0, times=1)
        assert clause.fires(0, 0)
        assert not clause.fires(0, 1)  # the retry must succeed
        twice = FaultClause(mode="crash", chunk=0, times=2)
        assert twice.fires(0, 1)
        assert not twice.fires(0, 2)

    def test_probabilistic_firing_is_deterministic(self):
        clause = FaultClause(mode="crash", p=0.5, seed=7)
        fired = [clause.fires(cid, 0) for cid in range(200)]
        assert fired == [clause.fires(cid, 0) for cid in range(200)]
        # Roughly half fire — the hash behaves like a uniform draw.
        assert 60 < sum(fired) < 140
        # A different seed selects a different subset.
        other = FaultClause(mode="crash", p=0.5, seed=8)
        assert fired != [other.fires(cid, 0) for cid in range(200)]

    def test_clause_for_filters_by_mode(self):
        plan = parse_fault_spec("crash:chunk=0;hang:chunk=1")
        assert plan.clause_for(0, 0, mode="crash").mode == "crash"
        assert plan.clause_for(0, 0, mode="hang") is None
        assert plan.clause_for(1, 0, mode="hang").mode == "hang"
        assert plan.clause_for(5, 0) is None

    def test_corrupts(self):
        plan = parse_fault_spec("corrupt:chunk=1")
        assert plan.corrupts(1, 0)
        assert not plan.corrupts(1, 1)
        assert not plan.corrupts(0, 0)

    def test_empty_plan_hooks_are_noops(self):
        EMPTY_PLAN.inject_pre_compute(0, 0)  # must not crash/hang/raise
        assert not EMPTY_PLAN.corrupts(0, 0)


class TestCorruptBuffers:
    def test_poisons_first_float_buffer_copy(self):
        z = np.ones(8, dtype=np.float32)
        out = corrupt_buffers({"z": z})
        assert np.isnan(out["z"].flat[0])
        # The input is never mutated (the worker's accumulator stays clean).
        assert not np.isnan(z).any()

    def test_integer_buffers_pass_through(self):
        counts = np.ones(8, dtype=np.int64)
        out = corrupt_buffers({"counts": counts})
        assert out["counts"] is counts

    def test_only_first_float_buffer_touched(self):
        a = np.ones(4, dtype=np.float64)
        b = np.ones(4, dtype=np.float64)
        out = corrupt_buffers({"a": a, "b": b})
        assert np.isnan(out["a"]).sum() == 1
        assert not np.isnan(out["b"]).any()


class TestResolve:
    def test_config_spec_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "hang:chunk=9")
        plan = resolve_fault_plan("crash:chunk=0")
        assert plan.clauses[0].mode == "crash"

    def test_env_used_when_config_empty(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "corrupt:chunk=2")
        plan = resolve_fault_plan("")
        assert plan.clauses[0].mode == "corrupt"

    def test_neither_means_no_plan(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert not resolve_fault_plan("")
