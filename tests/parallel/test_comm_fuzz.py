"""Property/fuzz tests for the communicator: random but *consistent*
collective sequences executed by every rank must terminate with identical
results everywhere — the strongest guard on the rendezvous machinery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel.cluster import Cluster
from repro.parallel.costmodel import LogGPModel

OPS = ("barrier", "bcast", "allreduce", "allgather", "gather", "scatter")


@settings(max_examples=15, deadline=None)
@given(
    n_ranks=st.integers(min_value=1, max_value=5),
    ops=st.lists(st.sampled_from(OPS), min_size=1, max_size=8),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_random_collective_sequences_terminate_consistently(n_ranks, ops, seed):
    def program(comm):
        rng = np.random.default_rng(seed)  # same stream on every rank
        trace = []
        for op in ops:
            root = int(rng.integers(0, comm.size))
            if op == "barrier":
                comm.barrier()
                trace.append("b")
            elif op == "bcast":
                payload = int(rng.integers(0, 1000))
                got = comm.bcast(payload if comm.rank == root else None, root=root)
                trace.append(got)
            elif op == "allreduce":
                got = comm.allreduce(comm.rank + 1, op=lambda a, b: a + b)
                trace.append(got)
            elif op == "allgather":
                trace.append(tuple(comm.allgather(comm.rank)))
            elif op == "gather":
                got = comm.gather(comm.rank * 2, root=root)
                trace.append(tuple(got) if got is not None else None)
            elif op == "scatter":
                values = list(range(comm.size)) if comm.rank == root else None
                got = comm.scatter(values, root=root)
                trace.append(("scatter", got == comm.rank))
        return trace

    res = Cluster(n_ranks, LogGPModel(), timeout=30.0).run(program)
    # every rank completed; rank-independent entries agree everywhere
    assert len(res.results) == n_ranks
    for other in res.results[1:]:
        for a, b in zip(res.results[0], other):
            if a is None or b is None:  # gather non-root
                continue
            assert a == b
    # virtual clocks are synchronised after a pure-collective program
    assert len({round(t, 12) for t in res.virtual_times}) == 1


@settings(max_examples=10, deadline=None)
@given(
    n_pairs=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_random_p2p_exchanges_deliver_exactly_once(n_pairs, seed):
    """Random (src, dst, tag) message sets: every message arrives intact."""
    rng = np.random.default_rng(seed)
    n_ranks = 4
    msgs = [
        (int(rng.integers(0, n_ranks)), int(rng.integers(0, n_ranks)),
         int(rng.integers(0, 3)), int(rng.integers(0, 10**6)))
        for _ in range(n_pairs)
    ]
    msgs = [(s, d, t, v) for s, d, t, v in msgs if s != d]

    def program(comm):
        for s, d, t, v in msgs:
            if comm.rank == s:
                comm.send(v, dest=d, tag=t)
        got = []
        for s, d, t, v in msgs:
            if comm.rank == d:
                got.append(comm.recv(source=s, tag=t))
        expected = [v for s, d, t, v in msgs if d == comm.rank]
        # matching is by (source, tag) in program order: multisets agree
        return sorted(got) == sorted(expected)

    res = Cluster(n_ranks, timeout=30.0).run(program)
    assert all(res.results)
