"""Tests for accumulator reductions over the communicator."""

import numpy as np
import pytest

from repro.errors import CommError
from repro.memory.base import make_accumulator
from repro.parallel.cluster import Cluster
from repro.parallel.costmodel import LogGPModel
from repro.parallel.reduction import allreduce_accumulator, reduce_accumulator

MODES = ["NORM", "CHARDISC", "CENTDISC"]


def fill(acc, seed):
    rng = np.random.default_rng(seed)
    pos = rng.integers(0, acc.length, 50)
    z = rng.dirichlet([5, 1, 1, 1, 0.2], 50)
    acc.add(pos, z)
    return pos, z


@pytest.mark.parametrize("mode", MODES)
class TestReduce:
    def test_reduce_to_root(self, mode):
        def program(comm):
            acc = make_accumulator(mode, 30)
            fill(acc, seed=comm.rank)
            merged = reduce_accumulator(comm, acc, root=0)
            return None if merged is None else merged.total_depth().sum()

        res = Cluster(3).run(program)
        assert res.results[0] is not None
        assert res.results[1] is None and res.results[2] is None
        # total evidence = 3 ranks x 50 contributions of unit mass
        assert res.results[0] == pytest.approx(150.0, rel=1e-3)

    def test_allreduce_same_everywhere(self, mode):
        def program(comm):
            acc = make_accumulator(mode, 30)
            fill(acc, seed=comm.rank + 10)
            merged = allreduce_accumulator(comm, acc)
            return merged.snapshot()

        res = Cluster(4).run(program)
        for other in res.results[1:]:
            assert np.allclose(res.results[0], other)


class TestReductionSemantics:
    def test_dense_reduction_matches_serial(self):
        # reduction result == adding everything into one accumulator
        contributions = [fill(make_accumulator("NORM", 30), seed=s) for s in range(3)]

        serial = make_accumulator("NORM", 30)
        for pos, z in contributions:
            serial.add(pos, z)

        def program(comm):
            acc = make_accumulator("NORM", 30)
            pos, z = contributions[comm.rank]
            acc.add(pos, z)
            merged = reduce_accumulator(comm, acc)
            return None if merged is None else merged.snapshot()

        res = Cluster(3).run(program)
        assert np.allclose(res.results[0], serial.snapshot(), atol=1e-5)

    def test_payload_size_drives_virtual_cost(self):
        cost = LogGPModel(latency=0, byte_time=1e-9)

        def program(comm, mode):
            acc = make_accumulator(mode, 50_000)
            reduce_accumulator(comm, acc)
            return comm.clock.now

        t_norm = Cluster(2, cost).run(program, "NORM").results[0]
        t_cent = Cluster(2, cost).run(program, "CENTDISC").results[0]
        # NORM ships 20 B/base, CENTDISC 5 B/base -> ~4x cheaper reduce
        assert t_norm > 2.5 * t_cent

    def test_mismatched_types_rejected(self):
        def program(comm):
            mode = "NORM" if comm.rank == 0 else "CHARDISC"
            acc = make_accumulator(mode, 30)
            reduce_accumulator(comm, acc)

        with pytest.raises(CommError):
            Cluster(2, timeout=5.0).run(program)

    def test_mismatched_lengths_rejected(self):
        def program(comm):
            acc = make_accumulator("NORM", 30 + comm.rank)
            reduce_accumulator(comm, acc)

        with pytest.raises(CommError):
            Cluster(2, timeout=5.0).run(program)
