"""Tests for the cluster driver (error propagation, timing, results)."""

import pytest

from repro.errors import CommError
from repro.parallel.cluster import Cluster
from repro.parallel.costmodel import LogGPModel


class TestClusterRun:
    def test_results_per_rank(self):
        res = Cluster(4).run(lambda comm: comm.rank * 2)
        assert res.results == [0, 2, 4, 6]
        assert len(res.virtual_times) == 4
        assert res.wall_time > 0

    def test_extra_args_forwarded(self):
        res = Cluster(2).run(lambda comm, a, b: a + b + comm.rank, 10, 20)
        assert res.results == [30, 31]

    def test_makespan_is_max(self):
        def program(comm):
            comm.account_compute(float(comm.rank))

        res = Cluster(3).run(program)
        assert res.makespan == pytest.approx(2.0)

    def test_exception_propagates_and_aborts_peers(self):
        def program(comm):
            if comm.rank == 1:
                raise ValueError("boom")
            comm.barrier()  # would hang forever without abort

        with pytest.raises(CommError, match="rank 1 failed"):
            Cluster(3, timeout=10.0).run(program)

    def test_first_failing_rank_reported(self):
        def program(comm):
            raise RuntimeError(f"r{comm.rank}")

        with pytest.raises(CommError, match="rank 0 failed"):
            Cluster(2, timeout=5.0).run(program)

    def test_bad_rank_count(self):
        with pytest.raises(CommError):
            Cluster(0)

    def test_cluster_reusable(self):
        cluster = Cluster(2, LogGPModel())
        r1 = cluster.run(lambda comm: comm.allreduce(1, op=lambda a, b: a + b))
        r2 = cluster.run(lambda comm: comm.allreduce(2, op=lambda a, b: a + b))
        assert r1.results == [2, 2]
        assert r2.results == [4, 4]

    def test_single_rank_world(self):
        res = Cluster(1).run(lambda comm: comm.allgather(comm.rank))
        assert res.results == [[0]]
