"""Tests for the persistent shared-memory worker pool.

Three layers: :func:`plan_chunks` (pure planning math), the
:class:`PersistentPool` lifecycle (segment ownership, reuse, crash
recovery, leak-free teardown — including a parent killed by
KeyboardInterrupt), and byte-identity of the pool execution path against
the per-run dispatcher for the same chunking.

Pool tests pin the fork start method to keep spawns cheap; the dispatch
semantics are start-method-agnostic (tests/pipeline/test_mp_backend.py).
"""

import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest

from repro.errors import PipelineError
from repro.experiments.workload import build_workload
from repro.observability import scope
from repro.parallel.pool import plan_chunks
from repro.pipeline.config import ParallelConfig, PipelineConfig
from repro.pipeline.gnumap import GnumapSnp
from repro.pipeline.mp_backend import make_pool, map_reads_multiprocessing

SHM_DIR = Path("/dev/shm")


@pytest.fixture(scope="module")
def workload():
    wl = build_workload(scale="tiny", seed=47)
    wl.reads = wl.reads[:150]
    return wl


def pool_config(**kwargs):
    kwargs.setdefault("start_method", "fork")
    # Buffer comparisons need a pinned chunking: autotune only ever changes
    # latency, but float merge order is chunking-dependent.
    kwargs.setdefault("autotune_chunks", False)
    return PipelineConfig(parallel=ParallelConfig(**kwargs))


def segments_on_disk(names):
    if not SHM_DIR.is_dir():  # pragma: no cover - non-tmpfs platforms
        pytest.skip("/dev/shm not available")
    return [n for n in names if (SHM_DIR / n).exists()]


class TestPlanChunks:
    def test_no_history_returns_static_split(self):
        assert plan_chunks(100, 2, 4) == 8
        assert plan_chunks(3, 8, 4) == 3  # capped by the item count
        assert plan_chunks(1, 2, 4) == 1

    def test_slow_items_clamp_to_retry_budget(self):
        # 10 s/item against a 120 s timeout: one item per chunk, so a
        # retried chunk refunds a bounded slice of work.
        assert plan_chunks(50, 2, 4, per_item_seconds=10.0) == 50

    def test_cheap_items_amortise_dispatch_latency(self):
        # 1 us items over a ~10 us pipe: chunks grow past the static split
        # until overhead is ~1% of compute, floored at one chunk per worker.
        assert plan_chunks(10_000, 16, 4, per_item_seconds=1e-6) == 16

    def test_transport_bound_items_take_biggest_chunks(self):
        # Bytes dominate compute: latency can't be amortised by growing
        # chunks, so the plan floors at one chunk per worker.
        n = plan_chunks(
            10_000, 16, 4, per_item_seconds=1e-6, per_item_nbytes=1e6
        )
        assert n == 16

    def test_deterministic(self):
        a = plan_chunks(5_000, 4, 4, per_item_seconds=3e-4, per_item_nbytes=128.0)
        b = plan_chunks(5_000, 4, 4, per_item_seconds=3e-4, per_item_nbytes=128.0)
        assert a == b

    def test_validation(self):
        with pytest.raises(PipelineError):
            plan_chunks(0, 2, 4)
        with pytest.raises(PipelineError):
            plan_chunks(10, 0, 4)


class TestPoolLifecycle:
    def test_publish_reuse_and_teardown(self, workload):
        pipe = GnumapSnp(workload.reference, pool_config())
        with scope() as reg:
            pool = make_pool(pipe, 2)
            try:
                assert pool.shm_bytes > 0
                live = segments_on_disk(pool.segment_names)
                assert set(live) == set(pool.segment_names)

                first, _ = map_reads_multiprocessing(
                    pipe, workload.reads, 2, pool=pool
                )
                second, _ = map_reads_multiprocessing(
                    pipe, workload.reads, 2, pool=pool
                )
            finally:
                pool.close()
            snap = reg.snapshot()
        # Warm reuse: the second run found the fleet alive.
        assert pool.runs == 2
        assert snap.counter("mp.pool_reuse") == 1
        assert snap.counter("mp.worker_deaths") == 0
        assert snap.gauges["mp.shm_bytes"] == pool.shm_bytes
        # Attach cost was measured in-worker and shipped home.
        hist = snap.histogram("mp.worker_attach_seconds")
        assert hist is not None and hist["count"] >= 1
        # Same fleet, same chunking: identical partial merges.
        assert np.array_equal(first.snapshot(), second.snapshot())
        # close() unlinked every segment.
        assert segments_on_disk(pool.segment_names) == []
        assert pool.closed

    def test_closed_pool_rejects_runs_and_close_is_idempotent(self, workload):
        pipe = GnumapSnp(workload.reference, pool_config())
        pool = make_pool(pipe, 2)
        pool.close()
        pool.close()
        with pytest.raises(PipelineError):
            pool.run([])
        with pytest.raises(PipelineError):
            pool.start()

    def test_autotune_feedback_accepts_only_sane_samples(self, workload):
        pipe = GnumapSnp(
            workload.reference, pool_config(autotune_chunks=True)
        )
        pool = make_pool(pipe, 2)
        try:
            assert pool.plan_chunks(100) == 8  # static until history arrives
            pool.note_chunk_time(0.0, 10.0)      # ignored
            pool.note_chunk_time(-1.0, 10.0)     # ignored
            pool.note_chunk_time(float("nan"), 10.0)  # ignored
            assert pool.plan_chunks(100) == 8
            pool.note_chunk_time(10.0, 1.0)      # 10 s/item: retry clamp
            assert pool.plan_chunks(100) == 100
        finally:
            pool.close()


class TestPoolFaultRecovery:
    def test_crashed_worker_reattaches_and_output_is_identical(self, workload):
        clean_pipe = GnumapSnp(workload.reference, pool_config())
        faulted_pipe = GnumapSnp(
            workload.reference, pool_config(fault_spec="crash:chunk=0")
        )
        clean_pool = make_pool(clean_pipe, 2)
        faulted_pool = make_pool(faulted_pipe, 2)
        try:
            clean, _ = map_reads_multiprocessing(
                clean_pipe, workload.reads, 2, pool=clean_pool
            )
            with scope() as reg:
                faulted, _ = map_reads_multiprocessing(
                    faulted_pipe, workload.reads, 2, pool=faulted_pool
                )
            snap = reg.snapshot()
            assert snap.counter("mp.worker_deaths") == 1
            assert snap.counter("mp.chunk_retries") == 1
            # The crash never touched the parent-owned segments...
            live = segments_on_disk(faulted_pool.segment_names)
            assert set(live) == set(faulted_pool.segment_names)
            # ...and the respawned worker re-attached: the attach histogram
            # holds the original fleet plus the replacement.
            hist = snap.histogram("mp.worker_attach_seconds")
            assert hist is not None and hist["count"] >= 1
            # Same chunking, same merge order: byte-identical evidence.
            assert np.array_equal(clean.snapshot(), faulted.snapshot())
        finally:
            clean_pool.close()
            faulted_pool.close()
        assert segments_on_disk(faulted_pool.segment_names) == []


class TestPickleFallback:
    def test_shared_memory_off_matches_shm_path(self, workload):
        shm_pipe = GnumapSnp(workload.reference, pool_config())
        pkl_pipe = GnumapSnp(
            workload.reference, pool_config(shared_memory=False)
        )
        shm_pool = make_pool(shm_pipe, 2)
        pkl_pool = make_pool(pkl_pipe, 2)
        try:
            assert pkl_pool.shm_bytes == 0
            assert pkl_pool.segment_names == []
            a, _ = map_reads_multiprocessing(
                shm_pipe, workload.reads, 2, pool=shm_pool
            )
            b, _ = map_reads_multiprocessing(
                pkl_pipe, workload.reads, 2, pool=pkl_pool
            )
            assert np.array_equal(a.snapshot(), b.snapshot())
        finally:
            shm_pool.close()
            pkl_pool.close()


class TestCrashNet:
    """A parent that dies without close() must not leak /dev/shm segments."""

    SCRIPT = textwrap.dedent("""
        import sys
        from repro.api import Engine
        from repro.experiments.workload import build_workload
        from repro.pipeline.config import ParallelConfig, PipelineConfig

        wl = build_workload(scale="tiny", seed=47)
        config = PipelineConfig(parallel=ParallelConfig(start_method="fork"))
        engine = Engine(wl.reference, config, workers=2)
        engine.run(wl.reads[:60])
        print("SEGMENTS " + " ".join(engine._pool.segment_names), flush=True)
        {exit_stmt}
    """)

    def _run(self, exit_stmt):
        if not SHM_DIR.is_dir():  # pragma: no cover - non-tmpfs platforms
            pytest.skip("/dev/shm not available")
        proc = subprocess.run(
            [sys.executable, "-c", self.SCRIPT.format(exit_stmt=exit_stmt)],
            capture_output=True,
            text=True,
            timeout=300,
        )
        line = next(
            (ln for ln in proc.stdout.splitlines() if ln.startswith("SEGMENTS ")),
            None,
        )
        assert line is not None, f"warm-up never completed: {proc.stderr[-2000:]}"
        return proc, line.split()[1:]

    def test_normal_exit_without_close_unlinks_segments(self):
        proc, names = self._run("sys.exit(0)")
        assert proc.returncode == 0
        assert names and segments_on_disk(names) == []

    def test_keyboard_interrupt_unlinks_segments(self):
        # An uncaught KeyboardInterrupt still unwinds through atexit: the
        # pool's crash net stops the workers and unlinks every segment.
        proc, names = self._run("raise KeyboardInterrupt")
        assert proc.returncode != 0
        assert names and segments_on_disk(names) == []


class TestLongSeedPublication:
    def test_long_index_arrays_round_trip_through_pool(self, workload):
        from repro.index.seeding import SeederConfig

        cfg = PipelineConfig(
            parallel=ParallelConfig(start_method="fork", autotune_chunks=False),
            seeder=SeederConfig(seed_len=20, qgram_filter=True),
        )
        pipe = GnumapSnp(workload.reference, cfg)
        serial, _ = pipe.map_reads(workload.reads)
        pool = make_pool(pipe, 2)
        try:
            published = set(pool._bundle.specs)
            assert {
                "index_long_kmers",
                "index_long_offsets",
                "index_long_positions",
            } <= published
            parallel, _ = map_reads_multiprocessing(
                pipe, workload.reads, 2, pool=pool
            )
        finally:
            pool.close()
        # Workers rebuilt the same long-seed index from shared views;
        # chunked merges reorder float sums, so compare to kernel precision.
        np.testing.assert_allclose(
            parallel.snapshot(), serial.snapshot(), rtol=1e-5, atol=1e-8
        )

    def test_plain_config_publishes_no_long_arrays(self, workload):
        pipe = GnumapSnp(workload.reference, pool_config())
        pool = make_pool(pipe, 2)
        try:
            assert not any("long" in key for key in pool._bundle.specs)
        finally:
            pool.close()
