"""Tests for throughput accounting."""

import pytest

from repro.errors import ReproError
from repro.evaluation.runtime import ThroughputReport, throughput


class TestThroughput:
    def test_reads_per_second(self):
        r = throughput(n_ranks=4, n_reads=1000, seconds=2.0)
        assert r.reads_per_second == 500.0

    def test_speedup_and_efficiency(self):
        base = throughput(1, 1000, 10.0)
        fast = throughput(4, 1000, 3.0)
        assert fast.speedup_vs(base) == pytest.approx(10 / 3)
        assert fast.efficiency_vs(base) == pytest.approx(10 / 12)

    def test_perfect_linear_efficiency_is_one(self):
        base = throughput(1, 100, 8.0)
        quad = throughput(4, 100, 2.0)
        assert quad.efficiency_vs(base) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ReproError):
            throughput(0, 10, 1.0)
        with pytest.raises(ReproError):
            throughput(1, -1, 1.0)
        with pytest.raises(ReproError):
            throughput(1, 10, 0.0)
        with pytest.raises(ReproError):
            ThroughputReport(1, 10, 0.0).reads_per_second
