"""Tests for the markdown run report."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.evaluation.report import _coverage_histogram, run_report
from repro.experiments.workload import build_workload
from repro.pipeline.config import PipelineConfig
from repro.pipeline.gnumap import GnumapSnp


@pytest.fixture(scope="module")
def run():
    wl = build_workload(scale="tiny", seed=808)
    result = GnumapSnp(wl.reference, PipelineConfig()).run(wl.reads)
    return wl, result


class TestCoverageHistogram:
    def test_bars_scale(self):
        depth = np.concatenate([np.zeros(50), np.full(100, 10.0)])
        text = _coverage_histogram(depth, n_bins=5)
        assert text.count("\n") == 4
        assert "#" in text

    def test_empty(self):
        assert "empty" in _coverage_histogram(np.array([]))


class TestRunReport:
    def test_contains_all_sections(self, run):
        wl, result = run
        text = run_report(result, wl.reference, truth=wl.catalog)
        for section in ("# GNUMAP-SNP run report", "## Summary",
                        "## Stage timing", "## Coverage", "## SNP calls",
                        "## Accuracy vs truth"):
            assert section in text

    def test_numbers_present(self, run):
        wl, result = run
        text = run_report(result, wl.reference, truth=wl.catalog)
        assert f"{wl.n_reads:,} total" in text
        assert "precision" in text
        for snp in result.snps[:3]:
            assert f"| {snp.pos} |" in text

    def test_without_truth(self, run):
        wl, result = run
        text = run_report(result, wl.reference)
        assert "Accuracy" not in text

    def test_row_cap(self, run):
        wl, result = run
        if len(result.snps) >= 2:
            text = run_report(result, wl.reference, max_snp_rows=1)
            assert "more)" in text

    def test_validation(self, run):
        wl, result = run
        with pytest.raises(ReproError):
            run_report(result, wl.reference, max_snp_rows=0)

    def test_renders_empty_run(self, run):
        wl, _ = run
        pipe = GnumapSnp(wl.reference, PipelineConfig())
        empty = pipe.run([])
        text = run_report(empty, wl.reference)
        assert "No SNPs called." in text
