"""Tests for truth-set comparison metrics."""

from dataclasses import dataclass

import pytest

from repro.errors import ReproError
from repro.evaluation.metrics import ConfusionCounts, compare_to_truth, roc_sweep
from repro.genome.alphabet import A, C, G, T
from repro.genome.variants import Variant, VariantCatalog


@dataclass
class FakeCall:
    pos: int
    alt_base: int = G


def catalog():
    return VariantCatalog([Variant(10, A, G), Variant(20, C, T), Variant(30, A, C)])


class TestConfusionCounts:
    def test_derived_metrics(self):
        c = ConfusionCounts(tp=8, fp=2, fn=2)
        assert c.precision == pytest.approx(0.8)
        assert c.recall == pytest.approx(0.8)
        assert c.f1 == pytest.approx(0.8)

    def test_zero_divisions(self):
        c = ConfusionCounts(tp=0, fp=0, fn=0)
        assert c.precision == 0.0 and c.recall == 0.0 and c.f1 == 0.0


class TestCompareToTruth:
    def test_basic_counts(self):
        calls = [FakeCall(10), FakeCall(20), FakeCall(99)]
        counts = compare_to_truth(calls, catalog())
        assert counts.tp == 2 and counts.fp == 1 and counts.fn == 1

    def test_allele_aware(self):
        calls = [FakeCall(10, alt_base=G), FakeCall(20, alt_base=G)]  # 20 wrong allele
        counts = compare_to_truth(calls, catalog(), allele_aware=True)
        assert counts.tp == 1 and counts.fn == 2

    def test_genotype_record_path(self):
        from repro.calling.records import BaseCall, SNPCall

        call = BaseCall(pos=10, depth=10, top_channel=G, second_channel=A,
                        stat=20, pvalue=1e-5, significant=True)
        snp = SNPCall(pos=10, ref_base=A, call=call)
        counts = compare_to_truth([snp], catalog(), allele_aware=True)
        assert counts.tp == 1

    def test_empty_calls(self):
        counts = compare_to_truth([], catalog())
        assert counts.tp == 0 and counts.fn == 3

    def test_record_without_pos_rejected(self):
        with pytest.raises(ReproError):
            compare_to_truth([object()], catalog())


class TestRocSweep:
    def test_descending_threshold_monotone_counts(self):
        scored = [(10, 5.0), (99, 4.0), (20, 3.0), (98, 2.0), (30, 1.0)]
        rows = roc_sweep(scored, catalog())
        # tp column non-decreasing, recall ends at 1.0
        tps = rows[:, 1]
        assert (tps[1:] >= tps[:-1]).all()
        assert rows[-1, 4] == pytest.approx(1.0)

    def test_duplicate_positions_counted_once(self):
        rows = roc_sweep([(10, 5.0), (10, 4.0)], catalog())
        assert rows.shape[0] == 1

    def test_empty_truth_rejected(self):
        with pytest.raises(ReproError):
            roc_sweep([(1, 1.0)], VariantCatalog())
