"""Tests for the statistical-calibration diagnostics."""

import numpy as np
import pytest

from repro.calling.negative_multinomial import sample_null
from repro.errors import ReproError
from repro.evaluation.calibration import (
    alpha_sweep,
    is_conservative,
    qq_points,
)
from repro.pipeline.config import PipelineConfig
from repro.pipeline.gnumap import GnumapSnp
from repro.simulate.genome_sim import GenomeSpec, simulate_genome
from repro.simulate.read_sim import ReadSimSpec, ReadSimulator


@pytest.fixture(scope="module")
def background_run():
    """Pipeline evidence from reads of the reference itself: no variants."""
    ref, _ = simulate_genome(GenomeSpec(length=8000, n_repeats=0), seed=41)
    reads = ReadSimulator(
        [ref], ReadSimSpec(read_length=62, coverage=10.0), seed=42
    ).simulate()
    pipe = GnumapSnp(ref, PipelineConfig())
    acc, _ = pipe.map_reads(reads)
    return ref, acc.snapshot()


class TestQQ:
    def test_background_pvalues_conservative(self, background_run):
        _, z = background_run
        table = qq_points(z)
        # pipeline background is ref-dominant, NOT uniform: the p-values are
        # heavily anti-conservative against the uniform null... but those
        # positions never become SNPs (they match the reference).  The QQ
        # table just has to be well-formed and monotone here.
        assert table.shape[1] == 2
        assert (np.diff(table[:, 0]) > 0).all()
        assert (np.diff(table[:, 1]) >= -1e-12).all()
        assert ((0 <= table) & (table <= 1)).all()

    def test_multinomial_null_justifies_alpha_over_5(self):
        """Under the true multinomial null the max-based LRT is
        anti-conservative against chi^2_1 — by at most the factor 5 the
        paper's alpha/5 Bonferroni correction absorbs ("testing each base
        vs background, 5 tests")."""
        from repro.calling.lrt import lrt_statistic_monoploid
        from repro.calling.pvalues import chi2_pvalue

        rng = np.random.default_rng(7)
        z = rng.multinomial(30, [0.2] * 5, size=30_000).astype(float)
        pvals = chi2_pvalue(lrt_statistic_monoploid(z))
        for alpha in (0.05, 0.01):
            observed = (pvals < alpha).mean()
            assert observed <= 5.0 * alpha * 1.3  # Bonferroni factor + noise
            assert observed >= alpha * 0.5  # genuinely anti-conservative

    def test_dirichlet_null_is_conservative(self):
        # The overdispersed continuous background sampler produces *smaller*
        # statistics than the multinomial chi^2 null: p-values pile up near
        # 1 and the QQ curve sits above the diagonal everywhere.
        z = sample_null(20_000, depth=500.0, concentration=2000.0, seed=7)
        table = qq_points(z, n_quantiles=10)
        body = table[table[:, 0] <= 0.85]
        assert (body[:, 1] >= body[:, 0]).all()
        # strongly conservative overall: observed quantiles sit far above
        assert table[:, 1].mean() > table[:, 0].mean() + 0.2

    def test_validation(self):
        with pytest.raises(ReproError):
            qq_points(np.zeros((5, 4)))
        with pytest.raises(ReproError):
            qq_points(np.zeros((5, 5)), n_quantiles=1)
        with pytest.raises(ReproError):
            qq_points(np.zeros((3, 5)), n_quantiles=10)


class TestAlphaSweep:
    def test_no_false_calls_on_background(self, background_run):
        ref, z = background_run
        points = alpha_sweep(z, ref.codes)
        assert all(p.n_tested > 0 for p in points)
        # the ref-match veto keeps the SNP-wise FPR far below alpha
        assert is_conservative(points)
        # stricter alpha never yields more calls
        calls = [p.n_false_calls for p in points]  # sorted loose -> strict
        assert calls == sorted(calls, reverse=True)

    def test_shape_validation(self):
        with pytest.raises(ReproError):
            alpha_sweep(np.zeros((4, 5)), np.zeros(5, dtype=np.uint8))

    def test_observed_rate(self):
        from repro.evaluation.calibration import AlphaSweepPoint

        p = AlphaSweepPoint(alpha=0.01, n_tested=1000, n_false_calls=5)
        assert p.observed_rate == pytest.approx(0.005)
        empty = AlphaSweepPoint(alpha=0.01, n_tested=0, n_false_calls=0)
        assert empty.observed_rate == 0.0
