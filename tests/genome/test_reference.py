"""Tests for the Reference container and its window/segment arithmetic."""

import numpy as np
import pytest

from repro.errors import SequenceError
from repro.genome.reference import Reference, Segment


class TestConstruction:
    def test_from_string(self):
        ref = Reference.from_string("ACGTN", name="x")
        assert len(ref) == 5
        assert ref.sequence == "ACGTN"
        assert ref.name == "x"

    def test_immutability(self):
        ref = Reference.from_string("ACGT")
        with pytest.raises(ValueError):
            ref.codes[0] = 1

    def test_copies_input(self):
        arr = np.array([0, 1, 2], dtype=np.uint8)
        ref = Reference(arr)
        arr[0] = 3
        assert ref.codes[0] == 0

    def test_empty_rejected(self):
        with pytest.raises(SequenceError):
            Reference(np.array([], dtype=np.uint8))

    def test_invalid_codes_rejected(self):
        with pytest.raises(SequenceError):
            Reference(np.array([9], dtype=np.uint8))

    def test_2d_rejected(self):
        with pytest.raises(SequenceError):
            Reference(np.zeros((2, 2), dtype=np.uint8))


class TestWindow:
    def setup_method(self):
        self.ref = Reference.from_string("ACGTACGTAC")

    def test_interior(self):
        start, codes = self.ref.window(2, 4)
        assert start == 2
        assert codes.tolist() == [2, 3, 0, 1]

    def test_clamped_left(self):
        start, codes = self.ref.window(-3, 5)
        assert start == 0
        assert codes.size == 2

    def test_clamped_right(self):
        start, codes = self.ref.window(8, 5)
        assert start == 8
        assert codes.size == 2

    def test_fully_outside_rejected(self):
        with pytest.raises(SequenceError):
            self.ref.window(100, 5)

    def test_zero_length_rejected(self):
        with pytest.raises(SequenceError):
            self.ref.window(0, 0)

    def test_candidate_window(self):
        start, codes = self.ref.candidate_window(hit_pos=4, read_len=3, pad=2)
        assert start == 2
        assert codes.size == 7

    def test_candidate_window_validation(self):
        with pytest.raises(SequenceError):
            self.ref.candidate_window(0, 0, 1)
        with pytest.raises(SequenceError):
            self.ref.candidate_window(0, 3, -1)


class TestSplit:
    def test_covers_exactly(self):
        ref = Reference.from_string("A" * 17)
        segs = ref.split(4)
        assert segs[0].start == 0
        assert segs[-1].stop == 17
        for a, b in zip(segs, segs[1:]):
            assert a.stop == b.start
        lengths = [len(s) for s in segs]
        assert max(lengths) - min(lengths) <= 1

    def test_single_part(self):
        ref = Reference.from_string("ACGT")
        assert ref.split(1) == [Segment(0, 4)]

    def test_too_many_parts_rejected(self):
        with pytest.raises(SequenceError):
            Reference.from_string("ACG").split(4)

    def test_nonpositive_rejected(self):
        with pytest.raises(SequenceError):
            Reference.from_string("ACG").split(0)


class TestSegment:
    def test_contains(self):
        seg = Segment(2, 5)
        assert seg.contains(2) and seg.contains(4)
        assert not seg.contains(5) and not seg.contains(1)
        assert len(seg) == 3

    def test_invalid_rejected(self):
        with pytest.raises(SequenceError):
            Segment(5, 2)
        with pytest.raises(SequenceError):
            Segment(-1, 2)


class TestGcContent:
    def test_known(self):
        assert Reference.from_string("GGCC").gc_content() == 1.0
        assert Reference.from_string("AATT").gc_content() == 0.0
        assert Reference.from_string("ACGT").gc_content() == 0.5

    def test_n_excluded(self):
        assert Reference.from_string("GCNN").gc_content() == 1.0

    def test_all_n(self):
        assert Reference.from_string("NNN").gc_content() == 0.0
