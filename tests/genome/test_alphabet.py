"""Tests for the nucleotide alphabet and complement machinery."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SequenceError
from repro.genome.alphabet import (
    A,
    C,
    CODE_TO_CHAR,
    G,
    N,
    T,
    decode,
    encode,
    is_transition,
    is_transversion,
    is_valid_codes,
    reverse_complement,
    reverse_complement_string,
)

dna = st.text(alphabet="ACGTN", min_size=0, max_size=200)
dna_nonempty = st.text(alphabet="ACGTN", min_size=1, max_size=200)


class TestEncodeDecode:
    def test_known_codes(self):
        assert encode("ACGTN").tolist() == [0, 1, 2, 3, 4]

    def test_lower_case_accepted(self):
        assert (encode("acgtn") == encode("ACGTN")).all()

    def test_invalid_char_rejected_with_position(self):
        with pytest.raises(SequenceError, match="position 2"):
            encode("ACXGT")

    def test_decode_out_of_range_rejected(self):
        with pytest.raises(SequenceError):
            decode(np.array([0, 9], dtype=np.uint8))

    @given(dna)
    def test_round_trip(self, seq):
        assert decode(encode(seq)) == seq

    def test_empty(self):
        assert encode("").size == 0
        assert decode(np.array([], dtype=np.uint8)) == ""


class TestReverseComplement:
    def test_known_value(self):
        assert reverse_complement_string("AACGT") == "ACGTT"

    def test_n_maps_to_n(self):
        assert reverse_complement_string("ANT") == "ANT"

    @given(dna_nonempty)
    def test_involution(self, seq):
        codes = encode(seq)
        assert (reverse_complement(reverse_complement(codes)) == codes).all()

    def test_invalid_codes_rejected(self):
        with pytest.raises(SequenceError):
            reverse_complement(np.array([7], dtype=np.uint8))


class TestValidity:
    def test_valid_with_n(self):
        assert is_valid_codes(np.array([0, 4]))

    def test_n_rejected_when_disallowed(self):
        assert not is_valid_codes(np.array([0, 4]), allow_n=False)

    def test_empty_is_valid(self):
        assert is_valid_codes(np.array([], dtype=np.uint8))


class TestTransitions:
    def test_transitions(self):
        assert is_transition(A, G) and is_transition(G, A)
        assert is_transition(C, T) and is_transition(T, C)

    def test_transversions(self):
        for a, b in [(A, C), (A, T), (G, C), (G, T)]:
            assert is_transversion(a, b)
            assert not is_transition(a, b)

    def test_self_is_neither(self):
        for b in (A, C, G, T):
            assert not is_transition(b, b)
            assert not is_transversion(b, b)

    def test_code_char_table(self):
        assert CODE_TO_CHAR == "ACGTN"
        assert CODE_TO_CHAR[N] == "N"
