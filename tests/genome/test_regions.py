"""Tests for BED-style region sets."""

import io

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.genome.regions import Region, RegionSet


class TestRegion:
    def test_validation(self):
        with pytest.raises(ReproError):
            Region(5, 5)
        with pytest.raises(ReproError):
            Region(-1, 3)

    def test_len(self):
        assert len(Region(2, 7)) == 5


class TestRegionSet:
    def test_merging(self):
        rs = RegionSet([(10, 20), (15, 30), (40, 50)])
        assert len(rs) == 2
        assert [(r.start, r.stop) for r in rs] == [(10, 30), (40, 50)]
        assert rs.total_bases() == 30

    def test_adjacent_merged(self):
        rs = RegionSet([(0, 10), (10, 20)])
        assert len(rs) == 1

    def test_membership(self):
        rs = RegionSet([(10, 20)])
        assert 10 in rs and 19 in rs
        assert 9 not in rs and 20 not in rs

    def test_contains_many_matches_scalar(self):
        rs = RegionSet([(5, 9), (20, 25)])
        positions = np.arange(0, 30)
        vec = rs.contains_many(positions)
        scalar = np.array([int(p) in rs for p in positions])
        assert (vec == scalar).all()

    def test_mask(self):
        rs = RegionSet([(2, 4)])
        assert rs.mask(6).tolist() == [False, False, True, True, False, False]

    def test_complement(self):
        rs = RegionSet([(2, 4), (6, 8)])
        comp = rs.complement(10)
        assert [(r.start, r.stop) for r in comp] == [(0, 2), (4, 6), (8, 10)]
        assert rs.total_bases() + comp.total_bases() == 10

    def test_complement_empty_set(self):
        comp = RegionSet().complement(5)
        assert [(r.start, r.stop) for r in comp] == [(0, 5)]

    def test_bed_round_trip(self):
        rs = RegionSet([(3, 9), (100, 250)])
        buf = io.StringIO()
        rs.write_bed(buf, chrom="chrX")
        back = RegionSet.read_bed(io.StringIO(buf.getvalue()))
        assert [(r.start, r.stop) for r in back] == [(3, 9), (100, 250)]

    def test_bed_skips_headers(self):
        back = RegionSet.read_bed(io.StringIO("track name=x\n# c\nref\t1\t5\n"))
        assert len(back) == 1

    def test_bed_malformed_rejected(self):
        with pytest.raises(ReproError):
            RegionSet.read_bed(io.StringIO("ref\t5\n"))

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=200),
                st.integers(min_value=1, max_value=50),
            ),
            max_size=15,
        )
    )
    def test_merge_invariants(self, raw):
        regions = [(a, a + w) for a, w in raw]
        rs = RegionSet(regions)
        items = list(rs)
        # sorted, disjoint, non-adjacent
        for a, b in zip(items, items[1:]):
            assert a.stop < b.start
        # membership matches the union of the inputs
        for a, w in raw:
            assert a in rs
            assert (a + w - 1) in rs


class TestCallerIntegration:
    def test_regions_filter_calls(self):
        from repro.calling.caller import SNPCaller
        from repro.genome.alphabet import encode

        ref = encode("A" * 10)
        z = np.zeros((10, 5))
        z[2] = [0.1, 15.0, 0.1, 0.1, 0]
        z[7] = [0.1, 15.0, 0.1, 0.1, 0]
        caller = SNPCaller()
        all_calls = caller.snps(z, ref)
        assert {s.pos for s in all_calls} == {2, 7}
        only_left = caller.snps(z, ref, regions=RegionSet([(0, 5)]))
        assert {s.pos for s in only_left} == {2}
