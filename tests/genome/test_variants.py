"""Tests for variant records, catalog generation and application."""

import io

import numpy as np
import pytest

from repro.errors import VariantError
from repro.genome.alphabet import A, C, G, T
from repro.genome.reference import Reference
from repro.genome.variants import (
    Variant,
    VariantCatalog,
    apply_variants,
    generate_snp_catalog,
)
from repro.simulate.genome_sim import GenomeSpec, simulate_genome


def small_ref(length=2000, seed=0):
    ref, _ = simulate_genome(GenomeSpec(length=length, n_repeats=0), seed=seed)
    return ref


class TestVariant:
    def test_valid(self):
        v = Variant(pos=3, ref=A, alt=G)
        assert v.is_transition

    def test_transversion(self):
        assert not Variant(pos=0, ref=A, alt=C).is_transition

    def test_ref_eq_alt_rejected(self):
        with pytest.raises(VariantError):
            Variant(pos=0, ref=A, alt=A)

    def test_negative_pos_rejected(self):
        with pytest.raises(VariantError):
            Variant(pos=-1, ref=A, alt=G)

    def test_bad_genotype_rejected(self):
        with pytest.raises(VariantError):
            Variant(pos=0, ref=A, alt=G, genotype="x")


class TestVariantCatalog:
    def test_sorted_and_unique(self):
        cat = VariantCatalog([Variant(5, A, G), Variant(2, C, T)])
        assert cat.positions.tolist() == [2, 5]
        assert 5 in cat and 3 not in cat
        assert cat.at(2).alt == T
        assert cat.at(99) is None

    def test_duplicate_positions_rejected(self):
        with pytest.raises(VariantError, match="duplicate"):
            VariantCatalog([Variant(1, A, G), Variant(1, C, T)])

    def test_tsv_round_trip(self):
        cat = VariantCatalog([Variant(1, A, G), Variant(9, C, T, genotype="het")])
        buf = io.StringIO()
        cat.write_tsv(buf)
        back = VariantCatalog.read_tsv(io.StringIO(buf.getvalue()))
        assert len(back) == 2
        assert back.at(9).genotype == "het"

    def test_tsv_bad_header_rejected(self):
        with pytest.raises(VariantError, match="header"):
            VariantCatalog.read_tsv(io.StringIO("wrong\theader\n"))

    def test_transition_fraction(self):
        cat = VariantCatalog([Variant(1, A, G), Variant(2, A, C)])
        assert cat.transition_fraction() == 0.5
        assert VariantCatalog().transition_fraction() == 0.0


class TestGenerateCatalog:
    def test_count_and_determinism(self):
        ref = small_ref()
        c1 = generate_snp_catalog(ref, 20, seed=3)
        c2 = generate_snp_catalog(ref, 20, seed=3)
        assert len(c1) == 20
        assert c1.positions.tolist() == c2.positions.tolist()

    def test_even_spacing(self):
        ref = small_ref(length=10_000)
        cat = generate_snp_catalog(ref, 10, seed=1)
        gaps = np.diff(cat.positions)
        # strata of 1000: adjacent SNPs never more than 2 strata apart
        assert gaps.max() < 2000
        assert gaps.min() > 0

    def test_refs_match_genome(self):
        ref = small_ref()
        for v in generate_snp_catalog(ref, 15, seed=2):
            assert int(ref.codes[v.pos]) == v.ref

    def test_transition_bias(self):
        ref = small_ref(length=60_000)
        cat = generate_snp_catalog(ref, 500, seed=4, transition_bias=2.0)
        # expected Ts fraction = 2/4 = 0.5; allow generous tolerance
        assert 0.4 < cat.transition_fraction() < 0.6

    def test_margin_respected(self):
        ref = small_ref()
        cat = generate_snp_catalog(ref, 5, seed=5, min_margin=300)
        assert cat.positions.min() >= 300
        assert cat.positions.max() < len(ref) - 300

    def test_het_fraction(self):
        ref = small_ref(length=20_000)
        cat = generate_snp_catalog(ref, 200, seed=6, het_fraction=0.5)
        het = sum(1 for v in cat if v.genotype == "het")
        assert 60 < het < 140

    def test_too_many_rejected(self):
        ref = small_ref(length=2000)
        with pytest.raises(VariantError):
            generate_snp_catalog(ref, 3000, seed=0)

    def test_zero_ok(self):
        assert len(generate_snp_catalog(small_ref(), 0)) == 0


class TestApplyVariants:
    def test_haploid(self):
        ref = small_ref()
        cat = generate_snp_catalog(ref, 10, seed=7)
        (hap,) = apply_variants(ref, cat, ploidy=1)
        diffs = np.nonzero(hap.codes != ref.codes)[0]
        assert diffs.tolist() == cat.positions.tolist()
        for v in cat:
            assert int(hap.codes[v.pos]) == v.alt

    def test_diploid_het_on_second_only(self):
        ref = small_ref()
        cat = VariantCatalog(
            [
                Variant(int(p), int(ref.codes[p]), (int(ref.codes[p]) + 1) % 4, g)
                for p, g in [(10, "hom"), (500, "het")]
            ]
        )
        h0, h1 = apply_variants(ref, cat, ploidy=2)
        assert h0.codes[10] != ref.codes[10] and h1.codes[10] != ref.codes[10]
        assert h0.codes[500] == ref.codes[500] and h1.codes[500] != ref.codes[500]

    def test_ref_mismatch_rejected(self):
        ref = small_ref()
        wrong_ref = (int(ref.codes[50]) + 1) % 4
        cat = VariantCatalog([Variant(50, wrong_ref, (wrong_ref + 1) % 4)])
        with pytest.raises(VariantError, match="catalog ref"):
            apply_variants(ref, cat)

    def test_out_of_range_rejected(self):
        ref = small_ref(length=2000)
        cat = VariantCatalog([Variant(5000, A, G)])
        with pytest.raises(VariantError, match="beyond"):
            apply_variants(ref, cat)

    def test_bad_ploidy_rejected(self):
        with pytest.raises(VariantError):
            apply_variants(small_ref(), VariantCatalog(), ploidy=3)
