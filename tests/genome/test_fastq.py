"""Tests for FASTQ reads and I/O, including truncation failure injection."""

import io

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import FastqError
from repro.genome.alphabet import encode
from repro.genome.fastq import (
    MAX_QUALITY,
    Read,
    fastq_string,
    read_fastq,
    write_fastq,
)


def mk_read(name="r", seq="ACGT", quals=(30, 30, 30, 30)):
    return Read(name=name, codes=encode(seq), quals=np.array(quals, dtype=np.uint8))


class TestRead:
    def test_lengths_must_match(self):
        with pytest.raises(FastqError, match="4 bases but 3"):
            Read("r", encode("ACGT"), np.array([1, 2, 3], dtype=np.uint8))

    def test_empty_rejected(self):
        with pytest.raises(FastqError, match="empty"):
            Read("r", encode(""), np.array([], dtype=np.uint8))

    def test_quality_ceiling(self):
        with pytest.raises(FastqError, match="exceeds"):
            mk_read(quals=(10, 10, 10, MAX_QUALITY + 1))

    def test_error_probabilities(self):
        r = mk_read(quals=(10, 20, 30, 40))
        assert r.error_probabilities() == pytest.approx([0.1, 0.01, 0.001, 0.0001])

    def test_quality_string(self):
        assert mk_read(quals=(0, 1, 2, 3)).quality_string == "!\"#$"

    def test_len_and_sequence(self):
        r = mk_read(seq="ACGT")
        assert len(r) == 4
        assert r.sequence == "ACGT"


class TestFastqIO:
    def test_basic_parse(self):
        reads = read_fastq(io.StringIO("@r1\nACGT\n+\nIIII\n"))
        assert len(reads) == 1
        assert reads[0].sequence == "ACGT"
        assert (reads[0].quals == 40).all()

    def test_length_mismatch_rejected(self):
        with pytest.raises(FastqError, match="bases vs"):
            read_fastq(io.StringIO("@r\nACGT\n+\nIII\n"))

    def test_missing_plus_rejected(self):
        with pytest.raises(FastqError, match="separator"):
            read_fastq(io.StringIO("@r\nACGT\nIIII\nIIII\n"))

    def test_truncated_record_rejected(self):
        with pytest.raises(FastqError, match="truncated"):
            read_fastq(io.StringIO("@r\nACGT\n"))

    def test_bad_header_rejected(self):
        with pytest.raises(FastqError, match="expected '@'"):
            read_fastq(io.StringIO("r\nACGT\n+\nIIII\n"))

    def test_quality_below_offset_rejected(self):
        # ' ' (space) is below the Phred+33 offset
        with pytest.raises(FastqError, match="outside"):
            read_fastq(io.StringIO("@r\nAC\n+\n  \n"))

    def test_empty_stream_ok(self):
        assert read_fastq(io.StringIO("")) == []

    def test_file_round_trip(self, tmp_path):
        reads = [mk_read("a"), mk_read("b", "TTTT", (2, 3, 4, 5))]
        path = tmp_path / "reads.fq"
        write_fastq(path, reads)
        back = read_fastq(path)
        assert [r.name for r in back] == ["a", "b"]
        assert (back[1].quals == np.array([2, 3, 4, 5])).all()

    @given(
        st.lists(
            st.tuples(
                st.text(alphabet="ACGT", min_size=1, max_size=80),
                st.integers(min_value=0, max_value=MAX_QUALITY),
            ),
            min_size=1,
            max_size=10,
        )
    )
    def test_round_trip_property(self, specs):
        reads = [
            Read(
                name=f"r{i}",
                codes=encode(seq),
                quals=np.full(len(seq), q, dtype=np.uint8),
            )
            for i, (seq, q) in enumerate(specs)
        ]
        back = read_fastq(io.StringIO(fastq_string(reads)))
        assert len(back) == len(reads)
        for orig, rt in zip(reads, back):
            assert rt.name == orig.name
            assert (rt.codes == orig.codes).all()
            assert (rt.quals == orig.quals).all()
