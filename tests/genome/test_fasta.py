"""Tests for FASTA I/O."""

import io

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import FastaError
from repro.genome.alphabet import encode
from repro.genome.fasta import fasta_string, iter_fasta, read_fasta, write_fasta


def roundtrip(records, width=70):
    return read_fasta(io.StringIO(fasta_string(records, width=width)))


class TestReadFasta:
    def test_basic(self):
        recs = read_fasta(io.StringIO(">r1\nACGT\n>r2\nTTNN\nAC\n"))
        assert list(recs) == ["r1", "r2"]
        assert recs["r2"].tolist() == encode("TTNNAC").tolist()

    def test_header_description_stripped(self):
        recs = read_fasta(io.StringIO(">chr1 homo sapiens\nAC\n"))
        assert list(recs) == ["chr1"]

    def test_blank_lines_skipped(self):
        recs = read_fasta(io.StringIO(">a\nAC\n\nGT\n"))
        assert recs["a"].size == 4

    def test_sequence_before_header_rejected(self):
        with pytest.raises(FastaError, match="before any header"):
            read_fasta(io.StringIO("ACGT\n"))

    def test_empty_record_rejected(self):
        with pytest.raises(FastaError, match="no sequence"):
            read_fasta(io.StringIO(">a\n>b\nAC\n"))

    def test_empty_header_rejected(self):
        with pytest.raises(FastaError, match="empty FASTA header"):
            read_fasta(io.StringIO(">\nAC\n"))

    def test_duplicate_names_rejected(self):
        with pytest.raises(FastaError, match="duplicate"):
            read_fasta(io.StringIO(">a\nAC\n>a\nGT\n"))

    def test_empty_input_rejected(self):
        with pytest.raises(FastaError, match="empty FASTA"):
            list(iter_fasta(io.StringIO("")))

    def test_crlf_tolerated(self):
        recs = read_fasta(io.StringIO(">a\r\nACGT\r\n"))
        assert recs["a"].size == 4


class TestWriteFasta:
    def test_wrapping(self):
        text = fasta_string({"a": encode("A" * 25)}, width=10)
        lines = text.splitlines()
        assert lines[1:] == ["A" * 10, "A" * 10, "A" * 5]

    def test_bad_width_rejected(self):
        with pytest.raises(FastaError):
            fasta_string({"a": encode("AC")}, width=0)

    def test_whitespace_name_rejected(self):
        with pytest.raises(FastaError):
            fasta_string({"a b": encode("AC")})

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "x.fa"
        records = {"chr": encode("ACGTNACGT")}
        write_fasta(path, records)
        back = read_fasta(path)
        assert (back["chr"] == records["chr"]).all()

    @given(
        st.dictionaries(
            st.text(alphabet="abcXYZ019_", min_size=1, max_size=8),
            st.text(alphabet="ACGTN", min_size=1, max_size=120).map(encode),
            min_size=1,
            max_size=4,
        ),
        st.integers(min_value=1, max_value=90),
    )
    def test_round_trip_property(self, records, width):
        back = roundtrip(records, width=width)
        assert set(back) == set(records)
        for name in records:
            assert (back[name] == records[name]).all()
