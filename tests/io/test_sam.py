"""Tests for SAM output."""

import io

import numpy as np
import pytest

from repro.errors import PipelineError
from repro.experiments.workload import build_workload
from repro.genome.alphabet import decode, reverse_complement
from repro.genome.fastq import Read
from repro.io.sam import Placement, _cigar_from_pairs, _mapq, collect_placements, write_sam
from repro.pipeline.config import PipelineConfig
from repro.pipeline.gnumap import GnumapSnp


@pytest.fixture(scope="module")
def setup():
    wl = build_workload(scale="tiny", seed=201)
    pipe = GnumapSnp(wl.reference, PipelineConfig())
    return wl, pipe


class TestCigar:
    def test_perfect_match(self):
        pairs = [(i, i + 3) for i in range(1, 11)]
        assert _cigar_from_pairs(pairs, 10) == "10M"

    def test_soft_clips(self):
        pairs = [(i, i) for i in range(3, 9)]
        assert _cigar_from_pairs(pairs, 10) == "2S6M2S"

    def test_insertion(self):
        # read positions 1..4 then 7..10 matched: i jumps by 3 => 2I
        pairs = [(i, i) for i in range(1, 5)] + [(i, i - 2) for i in range(7, 11)]
        assert _cigar_from_pairs(pairs, 10) == "4M2I4M"

    def test_deletion(self):
        pairs = [(i, i) for i in range(1, 5)] + [(i, i + 2) for i in range(5, 9)]
        assert _cigar_from_pairs(pairs, 8) == "4M2D4M"

    def test_empty(self):
        assert _cigar_from_pairs([], 5) == "5S"


class TestMapq:
    def test_extremes(self):
        assert _mapq(1.0) == 60
        assert _mapq(0.0) == 0

    def test_midpoints(self):
        assert _mapq(0.9) == 10
        assert _mapq(0.99) == 20
        assert _mapq(0.5) == 3


class TestCollectPlacements:
    def test_perfect_reads_place_exactly(self, setup):
        wl, pipe = setup
        ref = wl.reference
        reads = [
            Read("p0", ref.codes[100:162].copy(), np.full(62, 40, dtype=np.uint8)),
            Read(
                "p1",
                reverse_complement(ref.codes[500:562]),
                np.full(62, 40, dtype=np.uint8),
            ),
        ]
        placements = collect_placements(pipe, reads)
        primary = {p.read_name: p for p in placements if p.is_primary}
        assert primary["p0"].pos == 100
        assert primary["p0"].strand == 1
        assert primary["p0"].cigar == "62M"
        assert primary["p1"].pos == 500
        assert primary["p1"].strand == -1
        # unique placements get high posterior weight and mapq
        assert primary["p0"].weight > 0.99

    def test_simulated_reads_mostly_recover_truth(self, setup):
        wl, pipe = setup
        placements = collect_placements(pipe, wl.reads[:150])
        primary = {p.read_name: p for p in placements if p.is_primary}
        by_name = {r.name: r for r in wl.reads[:150]}
        hits = sum(
            1
            for name, p in primary.items()
            if abs(p.pos - by_name[name].true_pos) <= 3
        )
        assert hits >= 0.9 * len(primary)

    def test_secondary_alignments_for_repeats(self):
        from repro.simulate.genome_sim import GenomeSpec, simulate_genome

        ref, repeats = simulate_genome(
            GenomeSpec(length=20_000, n_repeats=1, repeat_length=400,
                       repeat_divergence=0.0),
            seed=9,
        )
        pipe = GnumapSnp(ref, PipelineConfig())
        rep = repeats[0]
        read = Read(
            "rep",
            ref.codes[rep.src_start + 50 : rep.src_start + 112].copy(),
            np.full(62, 40, dtype=np.uint8),
        )
        placements = collect_placements(pipe, [read])
        assert len(placements) == 2
        weights = sorted(p.weight for p in placements)
        assert weights[0] == pytest.approx(weights[1], abs=0.05)  # ~50/50
        primaries = [p for p in placements if p.is_primary]
        assert len(primaries) == 1

    def test_validation(self, setup):
        _, pipe = setup
        with pytest.raises(PipelineError):
            collect_placements(pipe, [], max_secondary=-1)


class TestWriteSam:
    def test_header_and_fields(self, setup):
        wl, pipe = setup
        placements = collect_placements(pipe, wl.reads[:10])
        buf = io.StringIO()
        n = write_sam(buf, placements, wl.reference.name, len(wl.reference))
        lines = buf.getvalue().splitlines()
        assert lines[0].startswith("@HD")
        assert f"LN:{len(wl.reference)}" in lines[1]
        data = [l for l in lines if not l.startswith("@")]
        assert len(data) == n == len(placements)
        for line in data:
            fields = line.split("\t")
            assert len(fields) == 12
            flag, pos, mapq = int(fields[1]), int(fields[3]), int(fields[4])
            assert pos >= 1
            assert 0 <= mapq <= 60
            assert fields[5] != "*"
            assert fields[10] != "*"
            assert len(fields[9]) == len(fields[10])

    def test_reverse_strand_flag_and_seq(self, setup):
        wl, pipe = setup
        ref = wl.reference
        read = Read(
            "rc",
            reverse_complement(ref.codes[800:862]),
            np.full(62, 40, dtype=np.uint8),
        )
        placements = collect_placements(pipe, [read])
        buf = io.StringIO()
        write_sam(buf, placements, ref.name, len(ref))
        line = [l for l in buf.getvalue().splitlines() if not l.startswith("@")][0]
        fields = line.split("\t")
        assert int(fields[1]) & 0x10
        # SAM stores the reference-forward sequence
        assert fields[9] == decode(ref.codes[800:862])

    def test_validation(self):
        with pytest.raises(PipelineError):
            write_sam(io.StringIO(), [], "ref", 0)
