"""Tests for the Illumina-like error model."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.genome.fastq import MAX_QUALITY
from repro.simulate.error_model import IlluminaErrorModel, apply_indels


class TestErrorProfile:
    def test_monotone_ramp(self):
        model = IlluminaErrorModel(start_error=0.001, end_error=0.02)
        prof = model.error_profile(62)
        assert prof[0] == pytest.approx(0.001)
        assert prof[-1] == pytest.approx(0.02)
        assert (np.diff(prof) >= 0).all()

    def test_single_base(self):
        prof = IlluminaErrorModel(start_error=0.005).error_profile(1)
        assert prof.tolist() == [0.005]

    def test_bad_length(self):
        with pytest.raises(ConfigError):
            IlluminaErrorModel().error_profile(0)

    def test_validation(self):
        with pytest.raises(ConfigError):
            IlluminaErrorModel(start_error=1.5)
        with pytest.raises(ConfigError):
            IlluminaErrorModel(ramp=0)
        with pytest.raises(ConfigError):
            IlluminaErrorModel(quality_noise_sd=-1)
        with pytest.raises(ConfigError):
            IlluminaErrorModel(indel_rate=0.9)


class TestQualities:
    def test_qualities_track_errors_without_noise(self):
        model = IlluminaErrorModel(quality_noise_sd=0.0)
        rng = np.random.default_rng(0)
        quals = model.sample_qualities(np.array([0.1, 0.01, 0.001]), rng)
        assert quals.tolist() == [10, 20, 30]

    def test_qualities_clipped(self):
        model = IlluminaErrorModel(quality_noise_sd=0.0)
        rng = np.random.default_rng(0)
        quals = model.sample_qualities(np.array([1e-12, 0.9]), rng)
        assert quals[0] == MAX_QUALITY
        assert quals[1] >= 2

    def test_noise_perturbs(self):
        model = IlluminaErrorModel(quality_noise_sd=3.0)
        rng = np.random.default_rng(1)
        quals = model.sample_qualities(np.full(200, 0.01), rng)
        assert len(set(quals.tolist())) > 1


class TestCorrupt:
    def test_error_rate_statistics(self):
        model = IlluminaErrorModel(start_error=0.05, end_error=0.05, quality_noise_sd=0)
        rng = np.random.default_rng(2)
        n_err = 0
        total = 0
        template = rng.integers(0, 4, 100).astype(np.uint8)
        for _ in range(200):
            corrupted, _, mask = model.corrupt(template, rng)
            n_err += mask.sum()
            total += template.size
            # errors always change the base
            assert (corrupted[mask] != template[mask]).all()
            assert (corrupted[~mask] == template[~mask]).all()
        rate = n_err / total
        assert 0.035 < rate < 0.065

    def test_shapes(self):
        model = IlluminaErrorModel()
        rng = np.random.default_rng(3)
        template = rng.integers(0, 4, 62).astype(np.uint8)
        codes, quals, mask = model.corrupt(template, rng)
        assert codes.shape == quals.shape == mask.shape == (62,)

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            IlluminaErrorModel().corrupt(np.array([], dtype=np.uint8), 0)

    def test_errors_concentrate_at_3prime(self):
        model = IlluminaErrorModel(start_error=0.0, end_error=0.2, ramp=1.0,
                                   quality_noise_sd=0)
        rng = np.random.default_rng(4)
        template = np.zeros(50, dtype=np.uint8)
        first_half = second_half = 0
        for _ in range(300):
            _, _, mask = model.corrupt(template, rng)
            first_half += mask[:25].sum()
            second_half += mask[25:].sum()
        assert second_half > 2 * first_half


class TestIndels:
    def test_zero_rate_identity(self):
        codes = np.array([0, 1, 2, 3], dtype=np.uint8)
        rng = np.random.default_rng(0)
        assert (apply_indels(codes, 0.0, rng) == codes).all()

    def test_length_preserved(self):
        rng = np.random.default_rng(5)
        codes = rng.integers(0, 4, 80).astype(np.uint8)
        out = apply_indels(codes, 0.1, rng)
        assert out.size == codes.size

    def test_rate_validation(self):
        with pytest.raises(ConfigError):
            apply_indels(np.zeros(5, dtype=np.uint8), 0.7, np.random.default_rng(0))

    def test_indels_change_sequence(self):
        rng = np.random.default_rng(6)
        codes = rng.integers(0, 4, 200).astype(np.uint8)
        out = apply_indels(codes, 0.2, rng)
        assert (out != codes).any()

    def test_corrupt_with_indels_enabled(self):
        model = IlluminaErrorModel(indel_rate=0.05)
        rng = np.random.default_rng(7)
        template = rng.integers(0, 4, 62).astype(np.uint8)
        codes, quals, _ = model.corrupt(template, rng)
        assert codes.size == 62 and quals.size == 62
