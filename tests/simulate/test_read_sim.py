"""Tests for the read simulator (MetaSim substitute)."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.genome.alphabet import reverse_complement
from repro.genome.reference import Reference
from repro.simulate.error_model import IlluminaErrorModel
from repro.simulate.genome_sim import GenomeSpec, simulate_genome
from repro.simulate.read_sim import ReadSimSpec, ReadSimulator, expected_coverage


def make_ref(length=5000, seed=0, **kw):
    ref, _ = simulate_genome(GenomeSpec(length=length, n_repeats=0, **kw), seed=seed)
    return ref


class TestReadSimSpec:
    def test_exactly_one_of_coverage_nreads(self):
        with pytest.raises(ConfigError):
            ReadSimSpec(coverage=10, n_reads=5)
        with pytest.raises(ConfigError):
            ReadSimSpec(coverage=None, n_reads=None)

    def test_resolve_n_reads_from_coverage(self):
        spec = ReadSimSpec(read_length=50, coverage=10.0)
        assert spec.resolve_n_reads(1000) == 200

    def test_resolve_explicit(self):
        spec = ReadSimSpec(coverage=None, n_reads=7)
        assert spec.resolve_n_reads(99999) == 7

    def test_validation(self):
        with pytest.raises(ConfigError):
            ReadSimSpec(read_length=0)
        with pytest.raises(ConfigError):
            ReadSimSpec(coverage=-1, n_reads=None)


class TestReadSimulator:
    def test_deterministic(self):
        ref = make_ref()
        spec = ReadSimSpec(read_length=40, coverage=None, n_reads=50)
        r1 = ReadSimulator([ref], spec, seed=1).simulate()
        r2 = ReadSimulator([ref], spec, seed=1).simulate()
        assert len(r1) == 50
        for a, b in zip(r1, r2):
            assert (a.codes == b.codes).all()
            assert a.true_pos == b.true_pos

    def test_read_count_from_coverage(self):
        ref = make_ref(length=1000)
        spec = ReadSimSpec(read_length=50, coverage=5.0)
        sim = ReadSimulator([ref], spec, seed=2)
        assert sim.n_reads() == 100
        assert expected_coverage(100, 50, 1000) == pytest.approx(5.0)

    def test_forward_reads_match_template_mostly(self):
        ref = make_ref()
        spec = ReadSimSpec(
            read_length=60, coverage=None, n_reads=100, both_strands=False,
            error_model=IlluminaErrorModel(start_error=0.0, end_error=0.0,
                                           quality_noise_sd=0),
        )
        for read in ReadSimulator([ref], spec, seed=3).simulate():
            template = ref.codes[read.true_pos : read.true_pos + 60]
            assert read.true_strand == 1
            assert (read.codes == template).all()

    def test_reverse_reads_are_revcomp(self):
        ref = make_ref()
        spec = ReadSimSpec(
            read_length=30, coverage=None, n_reads=300,
            error_model=IlluminaErrorModel(start_error=0.0, end_error=0.0,
                                           quality_noise_sd=0),
        )
        reads = ReadSimulator([ref], spec, seed=4).simulate()
        rev = [r for r in reads if r.true_strand == -1]
        assert 60 < len(rev) < 240  # roughly half
        for read in rev[:20]:
            template = ref.codes[read.true_pos : read.true_pos + 30]
            assert (read.codes == reverse_complement(template)).all()

    def test_positions_cover_genome(self):
        ref = make_ref(length=2000)
        spec = ReadSimSpec(read_length=40, coverage=None, n_reads=400)
        reads = ReadSimulator([ref], spec, seed=5).simulate()
        positions = np.array([r.true_pos for r in reads])
        assert positions.min() >= 0
        assert positions.max() <= 2000 - 40
        # spread over the genome, not clumped
        assert np.std(positions) > 300

    def test_n_templates_skipped(self):
        ref, _ = simulate_genome(
            GenomeSpec(length=3000, n_repeats=0, n_run_length=500), seed=6
        )
        spec = ReadSimSpec(read_length=50, coverage=None, n_reads=100)
        reads = ReadSimulator([ref], spec, seed=7).simulate()
        assert len(reads) == 100
        for read in reads:
            assert (read.codes <= 3).all()

    def test_mostly_n_genome_stalls(self):
        codes = np.full(200, 4, dtype=np.uint8)
        codes[:10] = 0
        ref = Reference(codes)
        spec = ReadSimSpec(read_length=50, coverage=None, n_reads=10)
        with pytest.raises(ConfigError, match="stalled"):
            ReadSimulator([ref], spec, seed=8).simulate()

    def test_diploid_sampling_uses_both_haplotypes(self):
        ref = make_ref()
        alt_codes = ref.codes.copy()
        alt_codes[:] = (alt_codes + 1) % 4
        alt = Reference(alt_codes)
        spec = ReadSimSpec(
            read_length=40, coverage=None, n_reads=200, both_strands=False,
            error_model=IlluminaErrorModel(start_error=0, end_error=0,
                                           quality_noise_sd=0),
        )
        reads = ReadSimulator([ref, alt], spec, seed=9).simulate()
        from_ref = sum(
            1
            for r in reads
            if (r.codes == ref.codes[r.true_pos : r.true_pos + 40]).all()
        )
        assert 40 < from_ref < 160

    def test_haplotype_length_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            ReadSimulator(
                [make_ref(length=1000), make_ref(length=999)],
                ReadSimSpec(read_length=30, coverage=1.0),
            )

    def test_genome_shorter_than_read_rejected(self):
        with pytest.raises(ConfigError):
            ReadSimulator([make_ref(length=30)], ReadSimSpec(read_length=62, coverage=1.0))


class TestSystematicErrors:
    def make_sim(self, miscall=0.6, n_sites=10, seed=11, exclude=None):
        ref = make_ref(length=4000, seed=10)
        spec = ReadSimSpec(
            read_length=50,
            coverage=None,
            n_reads=600,
            n_systematic_sites=n_sites,
            systematic_miscall_prob=miscall,
            error_model=IlluminaErrorModel(start_error=0, end_error=0,
                                           quality_noise_sd=0),
        )
        return ref, ReadSimulator([ref], spec, seed=seed,
                                  systematic_exclude=exclude)

    def test_sites_chosen_deterministically(self):
        _, sim1 = self.make_sim()
        _, sim2 = self.make_sim()
        assert (sim1.systematic_positions == sim2.systematic_positions).all()
        assert sim1.systematic_positions.size == 10

    def test_miscalls_coherent_and_low_quality(self):
        from repro.genome.alphabet import _COMPLEMENT

        ref, sim = self.make_sim(miscall=0.7)
        reads = sim.simulate()
        total = 0
        n_wrong = 0
        for site in sim.systematic_positions:
            site = int(site)
            wrong_counts: dict[int, int] = {}
            for read in reads:
                if read.true_pos <= site < read.true_pos + 50:
                    if read.true_strand == 1:
                        off = site - read.true_pos
                        base = int(read.codes[off])
                    else:
                        off = (read.true_pos + 50 - 1) - site
                        base = int(_COMPLEMENT[read.codes[off]])
                    total += 1
                    if base != int(ref.codes[site]):
                        wrong_counts[base] = wrong_counts.get(base, 0) + 1
                        assert read.quals[off] == 5  # flagged low quality
            # miscalls at one site land on a single coherent wrong base
            assert len(wrong_counts) <= 1
            n_wrong += sum(wrong_counts.values())
        assert total >= 30
        assert 0.4 * total <= n_wrong <= 0.95 * total

    def test_exclusion_respected(self):
        banned = list(range(0, 4000, 2))
        _, sim = self.make_sim(exclude=banned)
        assert not (set(sim.systematic_positions.tolist()) & set(banned))

    def test_zero_sites_no_overlay(self):
        ref, sim = self.make_sim(n_sites=0)
        assert sim.systematic_positions.size == 0
        reads = sim.simulate()
        for read in reads[:50]:
            template = ref.codes[read.true_pos : read.true_pos + 50]
            if read.true_strand == 1:
                assert (read.codes == template).all()

    def test_validation(self):
        with pytest.raises(ConfigError):
            ReadSimSpec(read_length=50, coverage=1.0, n_systematic_sites=-1)
        with pytest.raises(ConfigError):
            ReadSimSpec(read_length=50, coverage=1.0, systematic_miscall_prob=1.5)
        with pytest.raises(ConfigError):
            ReadSimSpec(read_length=50, coverage=1.0, systematic_quality=50)
