"""Tests for paired-end read simulation."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.genome.alphabet import reverse_complement
from repro.simulate.error_model import IlluminaErrorModel
from repro.simulate.genome_sim import GenomeSpec, simulate_genome
from repro.simulate.paired import PairedReadSimSpec, PairedReadSimulator


def make_ref(length=6000, seed=0):
    ref, _ = simulate_genome(GenomeSpec(length=length, n_repeats=0), seed=seed)
    return ref


def clean_spec(**kw):
    defaults = dict(
        read_length=50,
        coverage=None,
        n_pairs=100,
        insert_mean=250.0,
        insert_sd=20.0,
        error_model=IlluminaErrorModel(start_error=0, end_error=0,
                                       quality_noise_sd=0),
    )
    defaults.update(kw)
    return PairedReadSimSpec(**defaults)


class TestSpec:
    def test_validation(self):
        with pytest.raises(ConfigError):
            PairedReadSimSpec(read_length=0)
        with pytest.raises(ConfigError):
            PairedReadSimSpec(coverage=None, n_pairs=None)
        with pytest.raises(ConfigError):
            PairedReadSimSpec(read_length=62, insert_mean=100)
        with pytest.raises(ConfigError):
            PairedReadSimSpec(insert_sd=-1)

    def test_pair_count_from_coverage(self):
        spec = PairedReadSimSpec(read_length=50, coverage=10.0)
        assert spec.resolve_n_pairs(1000) == 100


class TestSimulator:
    def test_deterministic(self):
        ref = make_ref()
        p1 = PairedReadSimulator([ref], clean_spec(), seed=3).simulate()
        p2 = PairedReadSimulator([ref], clean_spec(), seed=3).simulate()
        assert len(p1) == 100
        for a, b in zip(p1, p2):
            assert (a.read1.codes == b.read1.codes).all()
            assert a.fragment_start == b.fragment_start

    def test_geometry(self):
        ref = make_ref()
        pairs = PairedReadSimulator([ref], clean_spec(), seed=4).simulate()
        for pair in pairs:
            L = 50
            assert pair.insert_size >= 2 * L
            # mates on opposite strands, inward-facing
            assert pair.read1.true_strand == -pair.read2.true_strand
            fwd = pair.read1 if pair.read1.true_strand == 1 else pair.read2
            rev = pair.read2 if pair.read1.true_strand == 1 else pair.read1
            assert fwd.true_pos == pair.fragment_start
            assert rev.true_pos == pair.fragment_start + pair.insert_size - L
            assert rev.true_pos >= fwd.true_pos

    def test_sequences_match_template(self):
        ref = make_ref()
        pairs = PairedReadSimulator([ref], clean_spec(), seed=5).simulate()
        for pair in pairs[:30]:
            for read in (pair.read1, pair.read2):
                template = ref.codes[read.true_pos : read.true_pos + 50]
                if read.true_strand == 1:
                    assert (read.codes == template).all()
                else:
                    assert (read.codes == reverse_complement(template)).all()

    def test_insert_distribution(self):
        ref = make_ref(length=20_000)
        pairs = PairedReadSimulator(
            [ref], clean_spec(n_pairs=400, insert_mean=300.0, insert_sd=25.0),
            seed=6,
        ).simulate()
        inserts = np.array([p.insert_size for p in pairs])
        assert abs(inserts.mean() - 300) < 10
        assert 10 < inserts.std() < 40

    def test_both_orientations_occur(self):
        ref = make_ref()
        pairs = PairedReadSimulator([ref], clean_spec(n_pairs=200), seed=7).simulate()
        strands = {p.read1.true_strand for p in pairs}
        assert strands == {1, -1}

    def test_mate_names(self):
        ref = make_ref()
        pairs = PairedReadSimulator([ref], clean_spec(n_pairs=3), seed=8).simulate()
        assert pairs[0].read1.name.endswith("/1")
        assert pairs[0].read2.name.endswith("/2")

    def test_short_genome_rejected(self):
        ref = make_ref(length=80)
        with pytest.raises(ConfigError):
            PairedReadSimulator([ref], clean_spec())
