"""Tests for the synthetic genome generator."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.simulate.genome_sim import GenomeSpec, simulate_genome


class TestGenomeSpec:
    def test_defaults_valid(self):
        GenomeSpec()

    def test_bad_length(self):
        with pytest.raises(ConfigError):
            GenomeSpec(length=0)

    def test_bad_gc(self):
        with pytest.raises(ConfigError):
            GenomeSpec(gc_content=1.5)

    def test_repeats_must_fit(self):
        with pytest.raises(ConfigError):
            GenomeSpec(length=1000, n_repeats=10, repeat_length=200)

    def test_bad_divergence(self):
        with pytest.raises(ConfigError):
            GenomeSpec(repeat_divergence=2.0)


class TestSimulateGenome:
    def test_length_and_determinism(self):
        spec = GenomeSpec(length=5000, n_repeats=1, repeat_length=100)
        r1, rep1 = simulate_genome(spec, seed=1)
        r2, rep2 = simulate_genome(spec, seed=1)
        assert len(r1) == 5000
        assert (r1.codes == r2.codes).all()
        assert rep1 == rep2

    def test_different_seeds_differ(self):
        spec = GenomeSpec(length=5000, n_repeats=0)
        r1, _ = simulate_genome(spec, seed=1)
        r2, _ = simulate_genome(spec, seed=2)
        assert (r1.codes != r2.codes).any()

    def test_gc_content_matches_target(self):
        spec = GenomeSpec(length=100_000, gc_content=0.41, n_repeats=0)
        ref, _ = simulate_genome(spec, seed=3)
        assert abs(ref.gc_content() - 0.41) < 0.01

    def test_exact_repeats_are_copies(self):
        spec = GenomeSpec(
            length=20_000, n_repeats=3, repeat_length=300, repeat_divergence=0.0
        )
        ref, repeats = simulate_genome(spec, seed=4)
        assert len(repeats) == 3
        for rep in repeats:
            src = ref.codes[rep.src_start : rep.src_start + rep.length]
            dst = ref.codes[rep.copy_start : rep.copy_start + rep.length]
            assert (src == dst).all()

    def test_diverged_repeats_close_but_not_identical(self):
        spec = GenomeSpec(
            length=20_000, n_repeats=2, repeat_length=400, repeat_divergence=0.05
        )
        ref, repeats = simulate_genome(spec, seed=5)
        for rep in repeats:
            src = ref.codes[rep.src_start : rep.src_start + rep.length]
            dst = ref.codes[rep.copy_start : rep.copy_start + rep.length]
            frac_diff = (src != dst).mean()
            assert 0.0 < frac_diff < 0.15

    def test_n_run_planted(self):
        spec = GenomeSpec(length=10_000, n_repeats=0, n_run_length=500)
        ref, _ = simulate_genome(spec, seed=6)
        n_count = int((ref.codes == 4).sum())
        assert n_count == 500
        # the run is contiguous
        pos = np.nonzero(ref.codes == 4)[0]
        assert pos[-1] - pos[0] == 499

    def test_no_n_without_request(self):
        spec = GenomeSpec(length=5000, n_repeats=0)
        ref, _ = simulate_genome(spec, seed=7)
        assert (ref.codes != 4).all()
