"""Smoke-run the example scripts as subprocesses.

Examples are deliverables; they must run clean from a fresh interpreter.
Only the faster examples run here (the scaling and memory-mode demos do the
same work as the benchmark suite).
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str, timeout: int = 300,
                python_flags: "tuple[str, ...]" = ()) -> str:
    proc = subprocess.run(
        [sys.executable, *python_flags, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, f"{name} failed:\n{proc.stderr[-2000:]}"
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        # -W error: the facade-based examples must not touch deprecated
        # entry points.
        out = run_example(
            "quickstart.py", python_flags=("-W", "error::DeprecationWarning")
        )
        assert "called" in out
        assert "precision" in out

    def test_fastq_workflow(self, tmp_path):
        out = run_example(
            "fastq_workflow.py",
            str(tmp_path),
            python_flags=("-W", "error::DeprecationWarning"),
        )
        assert "SNP calls" in out
        assert (tmp_path / "snps.tsv").exists()
        assert (tmp_path / "reference.fa").exists()

    def test_online_calling(self):
        out = run_example("online_calling.py")
        assert "convergence trajectory" in out
        assert "CALLED" in out

    def test_diploid_calling(self):
        out = run_example("diploid_calling.py")
        assert "site detection" in out
        assert "het" in out


class TestExampleSources:
    """The examples double as API documentation: with the 1.x shims gone in
    2.0, every example must exercise the Engine facade."""

    MIGRATED = (
        "quickstart.py",
        "fastq_workflow.py",
        "memory_modes.py",
        "parallel_scaling.py",
        "diploid_calling.py",
        "paired_end_repeats.py",
    )

    @pytest.mark.parametrize("name", MIGRATED)
    def test_migrated_examples_use_engine(self, name):
        src = (EXAMPLES / name).read_text()
        assert "Engine" in src
        assert "GnumapSnp" not in src
