"""Smoke-run the example scripts as subprocesses.

Examples are deliverables; they must run clean from a fresh interpreter.
Only the faster examples run here (the scaling and memory-mode demos do the
same work as the benchmark suite).
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str, timeout: int = 300) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, f"{name} failed:\n{proc.stderr[-2000:]}"
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "called" in out
        assert "precision" in out

    def test_fastq_workflow(self, tmp_path):
        out = run_example("fastq_workflow.py", str(tmp_path))
        assert "SNP calls" in out
        assert (tmp_path / "snps.tsv").exists()
        assert (tmp_path / "reference.fa").exists()

    def test_online_calling(self):
        out = run_example("online_calling.py")
        assert "convergence trajectory" in out
        assert "CALLED" in out

    def test_diploid_calling(self):
        out = run_example("diploid_calling.py")
        assert "site detection" in out
        assert "het" in out
