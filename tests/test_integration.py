"""Cross-module integration scenarios and failure injection.

These tests exercise behaviours that no single module owns: end-to-end
recovery of planted variants under specific conditions (repeats, diploid
genomes, SNP-free genomes), and the pipeline's handling of malformed or
adversarial inputs.
"""

import io

import numpy as np
import pytest

from repro import PipelineConfig, build_workload
from repro.pipeline.gnumap import GnumapSnp
from repro.calling.caller import CallerConfig
from repro.errors import FastqError
from repro.evaluation.metrics import compare_to_truth
from repro.genome.fastq import Read, read_fastq
from repro.genome.variants import Variant, VariantCatalog, apply_variants
from repro.simulate.error_model import IlluminaErrorModel
from repro.simulate.genome_sim import GenomeSpec, simulate_genome
from repro.simulate.read_sim import ReadSimSpec, ReadSimulator


class TestSnpFreeGenome:
    def test_no_calls_on_identical_individual(self):
        """Reads from the reference itself must yield zero SNPs."""
        ref, _ = simulate_genome(GenomeSpec(length=8000, n_repeats=1,
                                            repeat_length=200), seed=11)
        reads = ReadSimulator(
            [ref], ReadSimSpec(read_length=62, coverage=10.0), seed=12
        ).simulate()
        result = GnumapSnp(ref, PipelineConfig()).run(reads)
        assert result.snps == []


class TestHighCoverageRecovery:
    def test_all_snps_found_at_depth(self):
        """At 25x every planted SNP clears the LRT threshold."""
        ref, _ = simulate_genome(GenomeSpec(length=6000, n_repeats=0), seed=13)
        catalog = VariantCatalog(
            [
                Variant(int(p), int(ref.codes[p]), (int(ref.codes[p]) + 1) % 4)
                for p in (500, 2000, 3500, 5000)
            ]
        )
        (hap,) = apply_variants(ref, catalog)
        reads = ReadSimulator(
            [hap], ReadSimSpec(read_length=62, coverage=25.0), seed=14
        ).simulate()
        result = GnumapSnp(ref, PipelineConfig()).run(reads)
        counts = compare_to_truth(result.snps, catalog, allele_aware=True)
        assert counts.tp == 4
        assert counts.fp == 0


class TestRepeatRegionSnp:
    def test_snp_inside_exact_repeat_detected_where_maq_blind(self):
        """A SNP inside a two-copy *exact* repeat is fundamentally ambiguous
        (the multiread weighting splits its evidence 50/50 over both
        copies), but the probabilistic mapping must *preserve* the variant
        signal: the diploid LRT flags both copies as carrying a het-like
        A/alt mixture.  The MAQ-like baseline is completely blind here — its
        reads map with quality 0 and are filtered — which is exactly the
        paper's "especially true in repeat regions" claim."""
        from repro.baselines.maq import MaqLikeCaller
        from repro.calling.caller import CallerConfig

        ref, repeats = simulate_genome(
            GenomeSpec(length=30_000, n_repeats=1, repeat_length=500,
                       repeat_divergence=0.0),
            seed=15,
        )
        rep = repeats[0]
        pos = rep.src_start + 250
        copy_pos = rep.copy_start + 250
        alt = (int(ref.codes[pos]) + 1) % 4
        catalog = VariantCatalog([Variant(pos, int(ref.codes[pos]), alt)])
        (hap,) = apply_variants(ref, catalog)
        reads = ReadSimulator(
            [hap], ReadSimSpec(read_length=62, coverage=20.0), seed=16
        ).simulate()

        config = PipelineConfig(caller=CallerConfig(ploidy=2))
        result = GnumapSnp(ref, config).run(reads)
        found = {s.pos for s in result.snps}
        assert pos in found
        # the exact copy shows the same (genuinely indistinguishable) signal
        assert found <= {pos, copy_pos}
        truth_alt = {s.pos for s in result.snps if alt in s.call.genotype}
        assert pos in truth_alt

        # the single-best-hit baseline discards the mapq-0 repeat reads and
        # sees nothing at all
        maq_calls = MaqLikeCaller(ref, seed=0).run(reads)
        assert all(c.pos not in (pos, copy_pos) for c in maq_calls)


class TestDiploidEndToEnd:
    def test_het_sites_called_heterozygous(self):
        wl = build_workload(scale="tiny", seed=17, ploidy=2, het_fraction=1.0)
        config = PipelineConfig(caller=CallerConfig(ploidy=2))
        result = GnumapSnp(wl.reference, config).run(wl.reads)
        called_het = {s.pos for s in result.snps if s.call.heterozygous}
        truth_het = {v.pos for v in wl.catalog}
        # most recovered sites are genotyped heterozygous
        recovered = {s.pos for s in result.snps} & truth_het
        if recovered:
            assert len(called_het & recovered) >= 0.6 * len(recovered)


class TestQualityAwareness:
    def test_low_quality_errors_downweighted(self):
        """A read position with terrible quality must contribute little
        evidence, keeping an error there from looking like a SNP."""
        ref, _ = simulate_genome(GenomeSpec(length=4000, n_repeats=0), seed=18)
        pos = 2000
        # 30 identical reads, all with a wrong base at offset 31 marked Q2
        reads = []
        for i in range(30):
            start = pos - 31
            codes = ref.codes[start : start + 62].copy()
            codes[31] = (codes[31] + 1) % 4
            quals = np.full(62, 40, dtype=np.uint8)
            quals[31] = 2
            reads.append(Read(f"q{i}", codes, quals))
        result = GnumapSnp(ref, PipelineConfig()).run(reads)
        assert all(s.pos != pos for s in result.snps)

    def test_same_reads_high_quality_do_call(self):
        """Identical scenario with confident qualities *should* call a SNP —
        the contrast that proves the PWM matters."""
        ref, _ = simulate_genome(GenomeSpec(length=4000, n_repeats=0), seed=18)
        pos = 2000
        reads = []
        for i in range(30):
            start = pos - 31
            codes = ref.codes[start : start + 62].copy()
            codes[31] = (codes[31] + 1) % 4
            reads.append(Read(f"q{i}", codes, np.full(62, 40, dtype=np.uint8)))
        result = GnumapSnp(ref, PipelineConfig()).run(reads)
        assert any(s.pos == pos for s in result.snps)


class TestFailureInjection:
    def test_truncated_fastq_rejected(self):
        stream = io.StringIO("@r1\nACGT\n+\nIIII\n@r2\nACGT\n")
        with pytest.raises(FastqError):
            read_fastq(stream)

    def test_reads_longer_than_genome_window_handled(self):
        ref, _ = simulate_genome(GenomeSpec(length=200, n_repeats=0), seed=19)
        read = Read(
            "long", ref.codes[10:150].copy(), np.full(140, 35, dtype=np.uint8)
        )
        pipe = GnumapSnp(ref, PipelineConfig())
        _acc, stats = pipe.map_reads([read])
        assert stats.n_reads == 1  # mapped or not, never crashes

    def test_read_at_genome_edges(self):
        ref, _ = simulate_genome(GenomeSpec(length=3000, n_repeats=0), seed=20)
        reads = [
            Read("left", ref.codes[:62].copy(), np.full(62, 38, dtype=np.uint8)),
            Read("right", ref.codes[-62:].copy(), np.full(62, 38, dtype=np.uint8)),
        ]
        pipe = GnumapSnp(ref, PipelineConfig())
        acc, stats = pipe.map_reads(reads)
        assert stats.n_mapped == 2
        depth = acc.total_depth()
        assert depth[:62].sum() > 30  # left read's evidence present
        assert depth[-62:].sum() > 30

    def test_n_run_reference_never_called(self):
        ref, _ = simulate_genome(
            GenomeSpec(length=5000, n_repeats=0, n_run_length=300), seed=21
        )
        reads = ReadSimulator(
            [ref], ReadSimSpec(read_length=62, coverage=8.0), seed=22
        ).simulate()
        result = GnumapSnp(ref, PipelineConfig()).run(reads)
        n_positions = set(np.nonzero(ref.codes == 4)[0].tolist())
        assert all(s.pos not in n_positions for s in result.snps)

    def test_saturated_chardisc_still_calls(self):
        """255+ coverage saturates the byte counters; calls must still be
        sane (the paper's argument that the first 255 reads approximate the
        rest)."""
        ref, _ = simulate_genome(GenomeSpec(length=400, n_repeats=0), seed=23)
        pos = 200
        alt = (int(ref.codes[pos]) + 1) % 4
        catalog = VariantCatalog([Variant(pos, int(ref.codes[pos]), alt)])
        (hap,) = apply_variants(ref, catalog)
        reads = ReadSimulator(
            [hap],
            ReadSimSpec(read_length=62, coverage=300.0,
                        error_model=IlluminaErrorModel(start_error=0.001,
                                                       end_error=0.005)),
            seed=24,
        ).simulate()
        config = PipelineConfig(accumulator="CHARDISC")
        result = GnumapSnp(ref, config).run(reads)
        assert any(s.pos == pos for s in result.snps)
