"""Tests for the genomic k-mer hash index."""

import numpy as np
import pytest

from repro.errors import IndexError_
from repro.genome.reference import Reference
from repro.index.hashindex import GenomeIndex
from repro.index.kmer import pack_kmer, rolling_kmers
from repro.simulate.genome_sim import GenomeSpec, simulate_genome


def ref_from(seq: str) -> Reference:
    return Reference.from_string(seq)


class TestConstruction:
    def test_counts(self):
        ref = ref_from("ACGTACGT")
        idx = GenomeIndex(ref, k=4)
        # 5 windows, 4 distinct k-mers (ACGT repeats)
        assert idx.n_indexed_positions == 5
        assert idx.n_indexed_kmers == 4

    def test_genome_shorter_than_k_rejected(self):
        with pytest.raises(IndexError_):
            GenomeIndex(ref_from("ACG"), k=5)

    def test_bad_k_rejected(self):
        with pytest.raises(IndexError_):
            GenomeIndex(ref_from("ACGT"), k=0)

    def test_bad_max_positions_rejected(self):
        with pytest.raises(IndexError_):
            GenomeIndex(ref_from("ACGTACGT"), k=3, max_positions_per_kmer=0)

    def test_n_windows_excluded(self):
        idx = GenomeIndex(ref_from("ACGNACG"), k=3)
        # windows touching N (positions 1,2,3) are dropped
        assert idx.n_indexed_positions == 2


class TestLookup:
    def test_every_position_findable(self):
        ref, _ = simulate_genome(GenomeSpec(length=3000, n_repeats=0), seed=1)
        idx = GenomeIndex(ref, k=10, max_positions_per_kmer=None)
        packed, valid = rolling_kmers(ref.codes, 10)
        rng = np.random.default_rng(0)
        for pos in rng.integers(0, packed.size, 50):
            if not valid[pos]:
                continue
            hits = idx.lookup(int(packed[pos]))
            assert pos in hits

    def test_absent_kmer_empty(self):
        idx = GenomeIndex(ref_from("AAAAAAAA"), k=3)
        from repro.genome.alphabet import encode
        assert idx.lookup(pack_kmer(encode("TTT"))).size == 0

    def test_repeat_positions_all_reported(self):
        idx = GenomeIndex(ref_from("ACGTAACGTA"), k=5)
        from repro.genome.alphabet import encode
        hits = idx.lookup(pack_kmer(encode("ACGTA")))
        assert sorted(hits.tolist()) == [0, 5]

    def test_lookup_many_matches_lookup(self):
        ref, _ = simulate_genome(GenomeSpec(length=2000, n_repeats=0), seed=2)
        idx = GenomeIndex(ref, k=8)
        packed, _ = rolling_kmers(ref.codes, 8)
        queries = packed[:20]
        many = idx.lookup_many(queries)
        for q, hits in zip(queries, many):
            assert (hits == idx.lookup(int(q))).all()


class TestRepeatMasking:
    def test_high_frequency_kmers_dropped(self):
        ref = ref_from("A" * 100 + "ACGTACGTCC")
        idx = GenomeIndex(ref, k=5, max_positions_per_kmer=10)
        from repro.genome.alphabet import encode
        assert idx.lookup(pack_kmer(encode("AAAAA"))).size == 0
        assert idx.n_masked_kmers >= 1

    def test_none_keeps_everything(self):
        ref = ref_from("A" * 50)
        idx = GenomeIndex(ref, k=5, max_positions_per_kmer=None)
        from repro.genome.alphabet import encode
        assert idx.lookup(pack_kmer(encode("AAAAA"))).size == 46
        assert idx.n_masked_kmers == 0


class TestFootprint:
    def test_nbytes_positive_and_scales(self):
        small, _ = simulate_genome(GenomeSpec(length=1000, n_repeats=0), seed=3)
        large, _ = simulate_genome(GenomeSpec(length=10_000, n_repeats=0), seed=3)
        b_small = GenomeIndex(small).nbytes()
        b_large = GenomeIndex(large).nbytes()
        assert 0 < b_small < b_large

    def test_compact_dtypes(self):
        ref, _ = simulate_genome(GenomeSpec(length=1000, n_repeats=0), seed=4)
        idx = GenomeIndex(ref, k=10)
        # int32 everywhere at this scale: < 13 bytes/base for the index
        assert idx.nbytes() / len(ref) < 13
