"""Tests for the genomic k-mer hash index."""

import numpy as np
import pytest

from repro.errors import IndexError_
from repro.genome.reference import Reference
from repro.index.hashindex import GenomeIndex
from repro.index.kmer import pack_kmer, rolling_kmers
from repro.simulate.genome_sim import GenomeSpec, simulate_genome


def ref_from(seq: str) -> Reference:
    return Reference.from_string(seq)


class TestConstruction:
    def test_counts(self):
        ref = ref_from("ACGTACGT")
        idx = GenomeIndex(ref, k=4)
        # 5 windows, 4 distinct k-mers (ACGT repeats)
        assert idx.n_indexed_positions == 5
        assert idx.n_indexed_kmers == 4

    def test_genome_shorter_than_k_rejected(self):
        with pytest.raises(IndexError_):
            GenomeIndex(ref_from("ACG"), k=5)

    def test_bad_k_rejected(self):
        with pytest.raises(IndexError_):
            GenomeIndex(ref_from("ACGT"), k=0)

    def test_bad_max_positions_rejected(self):
        with pytest.raises(IndexError_):
            GenomeIndex(ref_from("ACGTACGT"), k=3, max_positions_per_kmer=0)

    def test_n_windows_excluded(self):
        idx = GenomeIndex(ref_from("ACGNACG"), k=3)
        # windows touching N (positions 1,2,3) are dropped
        assert idx.n_indexed_positions == 2


class TestLookup:
    def test_every_position_findable(self):
        ref, _ = simulate_genome(GenomeSpec(length=3000, n_repeats=0), seed=1)
        idx = GenomeIndex(ref, k=10, max_positions_per_kmer=None)
        packed, valid = rolling_kmers(ref.codes, 10)
        rng = np.random.default_rng(0)
        for pos in rng.integers(0, packed.size, 50):
            if not valid[pos]:
                continue
            hits = idx.lookup(int(packed[pos]))
            assert pos in hits

    def test_absent_kmer_empty(self):
        idx = GenomeIndex(ref_from("AAAAAAAA"), k=3)
        from repro.genome.alphabet import encode
        assert idx.lookup(pack_kmer(encode("TTT"))).size == 0

    def test_repeat_positions_all_reported(self):
        idx = GenomeIndex(ref_from("ACGTAACGTA"), k=5)
        from repro.genome.alphabet import encode
        hits = idx.lookup(pack_kmer(encode("ACGTA")))
        assert sorted(hits.tolist()) == [0, 5]

    def test_lookup_many_matches_lookup(self):
        ref, _ = simulate_genome(GenomeSpec(length=2000, n_repeats=0), seed=2)
        idx = GenomeIndex(ref, k=8)
        packed, _ = rolling_kmers(ref.codes, 8)
        queries = packed[:20]
        many = idx.lookup_many(queries)
        for q, hits in zip(queries, many):
            assert (hits == idx.lookup(int(q))).all()


class TestRepeatMasking:
    def test_high_frequency_kmers_dropped(self):
        ref = ref_from("A" * 100 + "ACGTACGTCC")
        idx = GenomeIndex(ref, k=5, max_positions_per_kmer=10)
        from repro.genome.alphabet import encode
        assert idx.lookup(pack_kmer(encode("AAAAA"))).size == 0
        assert idx.n_masked_kmers >= 1

    def test_none_keeps_everything(self):
        ref = ref_from("A" * 50)
        idx = GenomeIndex(ref, k=5, max_positions_per_kmer=None)
        from repro.genome.alphabet import encode
        assert idx.lookup(pack_kmer(encode("AAAAA"))).size == 46
        assert idx.n_masked_kmers == 0


class TestLongSeedTable:
    def test_long_table_positions_findable(self):
        ref, _ = simulate_genome(GenomeSpec(length=3000, n_repeats=0), seed=5)
        idx = GenomeIndex(ref, k=10, seed_len=20)
        assert idx.seed_width == 20 and idx.seed_len == 20
        packed, valid = rolling_kmers(ref.codes, 20)
        queries = np.nonzero(valid)[0][:25]
        hits, qidx = idx.lookup_seeds_flat(packed[queries])
        for i, qp in enumerate(queries):
            assert qp in hits[qidx == i]

    def test_no_long_table_falls_back_to_base(self):
        ref, _ = simulate_genome(GenomeSpec(length=2000, n_repeats=0), seed=6)
        idx = GenomeIndex(ref, k=10)
        assert idx.seed_width == 10 and idx.seed_len is None
        packed, _ = rolling_kmers(ref.codes, 10)
        base = idx.lookup_flat(packed[:10])
        seeds = idx.lookup_seeds_flat(packed[:10])
        assert (base[0] == seeds[0]).all() and (base[1] == seeds[1]).all()
        with pytest.raises(IndexError_):
            idx.long_csr_arrays()

    def test_seed_len_validation(self):
        ref, _ = simulate_genome(GenomeSpec(length=2000, n_repeats=0), seed=6)
        with pytest.raises(IndexError_):
            GenomeIndex(ref, k=10, seed_len=10)  # must exceed k
        with pytest.raises(IndexError_):
            GenomeIndex(ref, k=10, seed_len=32)  # past MAX_K
        with pytest.raises(IndexError_):
            GenomeIndex(ref_from("ACGTACGTACGTACG"), k=10, seed_len=20)

    def test_from_arrays_roundtrip_with_long_table(self):
        ref, _ = simulate_genome(GenomeSpec(length=2500, n_repeats=0), seed=7)
        built = GenomeIndex(ref, k=10, seed_len=20)
        k1, o1, p1 = built.csr_arrays()
        l1, lo1, lp1 = built.long_csr_arrays()
        attached = GenomeIndex.from_arrays(
            ref, 10, k1, o1, p1,
            seed_len=20, long_kmers=l1, long_offsets=lo1, long_positions=lp1,
        )
        packed, valid = rolling_kmers(ref.codes, 20)
        q = packed[np.nonzero(valid)[0][:30]]
        a = built.lookup_seeds_flat(q)
        b = attached.lookup_seeds_flat(q)
        assert (a[0] == b[0]).all() and (a[1] == b[1]).all()
        assert attached.nbytes() == built.nbytes()

    def test_from_arrays_incomplete_long_triple_rejected(self):
        ref, _ = simulate_genome(GenomeSpec(length=2500, n_repeats=0), seed=7)
        built = GenomeIndex(ref, k=10, seed_len=20)
        k1, o1, p1 = built.csr_arrays()
        l1, lo1, lp1 = built.long_csr_arrays()
        with pytest.raises(IndexError_):
            GenomeIndex.from_arrays(ref, 10, k1, o1, p1, seed_len=20,
                                    long_kmers=l1, long_offsets=lo1)
        with pytest.raises(IndexError_):
            GenomeIndex.from_arrays(ref, 10, k1, o1, p1, long_kmers=l1,
                                    long_offsets=lo1, long_positions=lp1)

    def test_long_table_masks_repeats_too(self):
        ref = ref_from("A" * 200 + "ACGTACGTCCGGATTACAGGAGTC")
        idx = GenomeIndex(ref, k=5, seed_len=21, max_positions_per_kmer=10)
        assert idx.n_masked_long_kmers >= 1

    def test_nbytes_includes_long_table(self):
        ref, _ = simulate_genome(GenomeSpec(length=2000, n_repeats=0), seed=8)
        base = GenomeIndex(ref, k=10).nbytes()
        both = GenomeIndex(ref, k=10, seed_len=20).nbytes()
        assert both > base


class TestFootprint:
    def test_nbytes_positive_and_scales(self):
        small, _ = simulate_genome(GenomeSpec(length=1000, n_repeats=0), seed=3)
        large, _ = simulate_genome(GenomeSpec(length=10_000, n_repeats=0), seed=3)
        b_small = GenomeIndex(small).nbytes()
        b_large = GenomeIndex(large).nbytes()
        assert 0 < b_small < b_large

    def test_compact_dtypes(self):
        ref, _ = simulate_genome(GenomeSpec(length=1000, n_repeats=0), seed=4)
        idx = GenomeIndex(ref, k=10)
        # int32 everywhere at this scale: < 13 bytes/base for the index
        assert idx.nbytes() / len(ref) < 13
