"""Tests for seed clustering into candidate regions."""

import numpy as np
import pytest

from repro.errors import IndexError_
from repro.genome.alphabet import reverse_complement
from repro.genome.fastq import Read
from repro.index.hashindex import GenomeIndex
from repro.index.seeding import CandidateRegion, Seeder, SeederConfig
from repro.simulate.genome_sim import GenomeSpec, simulate_genome


def make_setup(length=5000, seed=0, n_repeats=0, **idx_kw):
    ref, repeats = simulate_genome(
        GenomeSpec(length=length, n_repeats=n_repeats,
                   repeat_length=300 if n_repeats else 0,
                   repeat_divergence=0.0),
        seed=seed,
    )
    index = GenomeIndex(ref, k=10, **idx_kw)
    return ref, repeats, Seeder(index)


def perfect_read(ref, pos, length=62, name="r"):
    return Read(
        name=name,
        codes=ref.codes[pos : pos + length].copy(),
        quals=np.full(length, 40, dtype=np.uint8),
    )


class TestSeederConfig:
    def test_validation(self):
        with pytest.raises(IndexError_):
            SeederConfig(min_support=0)
        with pytest.raises(IndexError_):
            SeederConfig(diagonal_slack=-1)
        with pytest.raises(IndexError_):
            SeederConfig(max_candidates=0)
        with pytest.raises(IndexError_):
            SeederConfig(step=0)


class TestCandidateRegion:
    def test_validation(self):
        with pytest.raises(IndexError_):
            CandidateRegion(start=0, strand=2, support=1)
        with pytest.raises(IndexError_):
            CandidateRegion(start=0, strand=1, support=0)


class TestForwardSeeding:
    def test_perfect_read_found_at_true_position(self):
        ref, _, seeder = make_setup()
        for pos in (0, 1234, 4000):
            cands = seeder.candidates(perfect_read(ref, pos))
            assert cands, pos
            best = cands[0]
            assert best.strand == 1
            assert best.start == pos

    def test_read_with_errors_still_found(self):
        ref, _, seeder = make_setup(seed=1)
        read = perfect_read(ref, 2000)
        read.codes[10] = (read.codes[10] + 1) % 4
        read.codes[40] = (read.codes[40] + 2) % 4
        cands = seeder.candidates(read)
        assert any(c.start == 2000 and c.strand == 1 for c in cands)

    def test_random_read_unmapped(self):
        ref, _, seeder = make_setup(seed=2)
        rng = np.random.default_rng(99)
        read = Read(
            "rand",
            rng.integers(0, 4, 62).astype(np.uint8),
            np.full(62, 40, dtype=np.uint8),
        )
        cands = seeder.candidates(read)
        # a random 62-mer should hit nothing (or only weak accidents)
        assert all(c.support <= 3 for c in cands)

    def test_short_read_yields_nothing(self):
        ref, _, seeder = make_setup()
        read = Read("s", ref.codes[:5].copy(), np.full(5, 40, dtype=np.uint8))
        assert seeder.candidates(read) == []


class TestReverseSeeding:
    def test_rc_read_found_on_minus_strand(self):
        ref, _, seeder = make_setup(seed=3)
        pos = 1500
        template = ref.codes[pos : pos + 62]
        read = Read("rc", reverse_complement(template),
                    np.full(62, 40, dtype=np.uint8))
        cands = seeder.candidates(read)
        assert cands
        best = cands[0]
        assert best.strand == -1
        assert best.start == pos


class TestRepeats:
    def test_repeat_read_reports_both_copies(self):
        ref, repeats, seeder = make_setup(length=20_000, seed=4, n_repeats=1)
        rep = repeats[0]
        pos = rep.src_start + 50
        cands = seeder.candidates(perfect_read(ref, pos))
        starts = {c.start for c in cands if c.strand == 1}
        assert pos in starts
        assert rep.copy_start + 50 in starts

    def test_max_candidates_cap(self):
        ref, _, _ = make_setup(length=20_000, seed=4, n_repeats=1)
        index = GenomeIndex(ref, k=10)
        seeder = Seeder(index, SeederConfig(max_candidates=1))
        cands = seeder.candidates(perfect_read(ref, 100))
        assert len(cands) <= 1


class TestDiagonalClustering:
    def test_read_with_deletion_one_cluster(self):
        # Delete 2 bases from the middle of the template: hits fall on two
        # nearby diagonals which must merge into one candidate.
        ref, _, seeder = make_setup(seed=5)
        pos = 3000
        template = ref.codes[pos : pos + 64]
        codes = np.concatenate([template[:30], template[32:]])
        read = Read("del", codes, np.full(62, 40, dtype=np.uint8))
        cands = [c for c in seeder.candidates(read) if c.strand == 1]
        near = [c for c in cands if abs(c.start - pos) <= 3]
        assert len(near) == 1

    def test_step_reduces_support_but_finds(self):
        ref, _, _ = make_setup(seed=6)
        index = GenomeIndex(ref, k=10)
        seeder = Seeder(index, SeederConfig(step=4))
        cands = seeder.candidates(perfect_read(ref, 1000))
        assert any(c.start == 1000 for c in cands)

    def test_candidates_sorted_by_support(self):
        ref, _, seeder = make_setup(length=20_000, seed=7, n_repeats=2)
        read = perfect_read(ref, 500)
        cands = seeder.candidates(read)
        supports = [c.support for c in cands]
        assert supports == sorted(supports, reverse=True)
