"""Tests for seed clustering into candidate regions."""

import numpy as np
import pytest

from repro.errors import IndexError_
from repro.genome.alphabet import reverse_complement
from repro.genome.fastq import Read
from repro.genome.reference import Reference
from repro.index.hashindex import GenomeIndex
from repro.index.seeding import (
    CandidateRegion,
    Seeder,
    SeederConfig,
    cluster_diagonals,
)
from repro.observability import scope
from repro.simulate.genome_sim import GenomeSpec, simulate_genome


def make_setup(length=5000, seed=0, n_repeats=0, **idx_kw):
    ref, repeats = simulate_genome(
        GenomeSpec(length=length, n_repeats=n_repeats,
                   repeat_length=300 if n_repeats else 0,
                   repeat_divergence=0.0),
        seed=seed,
    )
    index = GenomeIndex(ref, k=10, **idx_kw)
    return ref, repeats, Seeder(index)


def perfect_read(ref, pos, length=62, name="r"):
    return Read(
        name=name,
        codes=ref.codes[pos : pos + length].copy(),
        quals=np.full(length, 40, dtype=np.uint8),
    )


class TestSeederConfig:
    def test_validation(self):
        with pytest.raises(IndexError_):
            SeederConfig(min_support=0)
        with pytest.raises(IndexError_):
            SeederConfig(diagonal_slack=-1)
        with pytest.raises(IndexError_):
            SeederConfig(max_candidates=0)
        with pytest.raises(IndexError_):
            SeederConfig(step=0)


class TestCandidateRegion:
    def test_validation(self):
        with pytest.raises(IndexError_):
            CandidateRegion(start=0, strand=2, support=1)
        with pytest.raises(IndexError_):
            CandidateRegion(start=0, strand=1, support=0)


class TestForwardSeeding:
    def test_perfect_read_found_at_true_position(self):
        ref, _, seeder = make_setup()
        for pos in (0, 1234, 4000):
            cands = seeder.candidates(perfect_read(ref, pos))
            assert cands, pos
            best = cands[0]
            assert best.strand == 1
            assert best.start == pos

    def test_read_with_errors_still_found(self):
        ref, _, seeder = make_setup(seed=1)
        read = perfect_read(ref, 2000)
        read.codes[10] = (read.codes[10] + 1) % 4
        read.codes[40] = (read.codes[40] + 2) % 4
        cands = seeder.candidates(read)
        assert any(c.start == 2000 and c.strand == 1 for c in cands)

    def test_random_read_unmapped(self):
        ref, _, seeder = make_setup(seed=2)
        rng = np.random.default_rng(99)
        read = Read(
            "rand",
            rng.integers(0, 4, 62).astype(np.uint8),
            np.full(62, 40, dtype=np.uint8),
        )
        cands = seeder.candidates(read)
        # a random 62-mer should hit nothing (or only weak accidents)
        assert all(c.support <= 3 for c in cands)

    def test_short_read_yields_nothing(self):
        ref, _, seeder = make_setup()
        read = Read("s", ref.codes[:5].copy(), np.full(5, 40, dtype=np.uint8))
        assert seeder.candidates(read) == []


class TestReverseSeeding:
    def test_rc_read_found_on_minus_strand(self):
        ref, _, seeder = make_setup(seed=3)
        pos = 1500
        template = ref.codes[pos : pos + 62]
        read = Read("rc", reverse_complement(template),
                    np.full(62, 40, dtype=np.uint8))
        cands = seeder.candidates(read)
        assert cands
        best = cands[0]
        assert best.strand == -1
        assert best.start == pos


class TestRepeats:
    def test_repeat_read_reports_both_copies(self):
        ref, repeats, seeder = make_setup(length=20_000, seed=4, n_repeats=1)
        rep = repeats[0]
        pos = rep.src_start + 50
        cands = seeder.candidates(perfect_read(ref, pos))
        starts = {c.start for c in cands if c.strand == 1}
        assert pos in starts
        assert rep.copy_start + 50 in starts

    def test_max_candidates_cap(self):
        ref, _, _ = make_setup(length=20_000, seed=4, n_repeats=1)
        index = GenomeIndex(ref, k=10)
        seeder = Seeder(index, SeederConfig(max_candidates=1))
        cands = seeder.candidates(perfect_read(ref, 100))
        assert len(cands) <= 1


class TestDiagonalClustering:
    def test_read_with_deletion_one_cluster(self):
        # Delete 2 bases from the middle of the template: hits fall on two
        # nearby diagonals which must merge into one candidate.
        ref, _, seeder = make_setup(seed=5)
        pos = 3000
        template = ref.codes[pos : pos + 64]
        codes = np.concatenate([template[:30], template[32:]])
        read = Read("del", codes, np.full(62, 40, dtype=np.uint8))
        cands = [c for c in seeder.candidates(read) if c.strand == 1]
        near = [c for c in cands if abs(c.start - pos) <= 3]
        assert len(near) == 1

    def test_step_reduces_support_but_finds(self):
        ref, _, _ = make_setup(seed=6)
        index = GenomeIndex(ref, k=10)
        seeder = Seeder(index, SeederConfig(step=4))
        cands = seeder.candidates(perfect_read(ref, 1000))
        assert any(c.start == 1000 for c in cands)

    def test_candidates_sorted_by_support(self):
        ref, _, seeder = make_setup(length=20_000, seed=7, n_repeats=2)
        read = perfect_read(ref, 500)
        cands = seeder.candidates(read)
        supports = [c.support for c in cands]
        assert supports == sorted(supports, reverse=True)


def chained_hit_genome(read_codes, k=10, diag_step=3, n_pieces=5, gap_base=0):
    """A genome where ``read_codes`` seeds hits on a *chain* of diagonals
    ``0, diag_step, 2*diag_step, ...`` — each within slack of the previous
    but the chain far wider than slack.  Piece ``i`` of the read (one k-mer
    at offset ``i*k``) is planted at genome position ``i*k + i*diag_step``;
    the filler base repeats so its k-mers are masked out of the index by
    ``max_positions_per_kmer``."""
    length = n_pieces * k + n_pieces * diag_step + 200
    genome = np.full(length, gap_base, dtype=np.uint8)
    for i in range(n_pieces):
        r = i * k
        g = r + i * diag_step
        genome[g : g + k] = read_codes[r : r + k]
    return Reference(genome, name="chain")


class TestBoundedClustering:
    """Regression: transitive slack-chaining must not collapse a wide
    diagonal chain into one cluster (mis-centred band, inflated support)."""

    def _chain_read(self, seed=11, k=10, n_pieces=5):
        rng = np.random.default_rng(seed)
        # Piece-wise random read with no base repeated 3x in a row, so the
        # poly-A filler never matches read k-mers.
        codes = (1 + rng.integers(0, 3, n_pieces * k + 12)).astype(np.uint8)
        return Read(
            "chain", codes, np.full(codes.size, 40, dtype=np.uint8)
        )

    def test_chained_diagonals_do_not_merge(self):
        # Diagonals 0, 3, 6, 9, 12 each get one distinct k-mer vote; slack=3
        # chains them pairwise.  The old transitive clustering collapsed all
        # five into ONE candidate with support 5 spanning 12 diagonals; the
        # bounded clustering must cap every cluster's support at what lies
        # within +-slack of its representative (here: 2).
        k, n_pieces, slack = 10, 5, 3
        read = self._chain_read(k=k, n_pieces=n_pieces)
        ref = chained_hit_genome(read.codes, k=k, diag_step=slack,
                                 n_pieces=n_pieces)
        index = GenomeIndex(ref, k=k, max_positions_per_kmer=4)
        seeder = Seeder(index, SeederConfig(min_support=1, diagonal_slack=slack))
        fwd = [c for c in seeder.candidates(read) if c.strand == 1]
        assert fwd, "chain hits vanished entirely"
        assert max(c.support for c in fwd) <= 2, (
            f"transitive merge: supports {[c.support for c in fwd]}"
        )
        # Every emitted candidate's diagonal is one of the planted ones.
        planted = {i * slack for i in range(n_pieces)}
        assert {c.band_diagonal for c in fwd} <= planted

    def test_cluster_diagonals_unit(self):
        diags = np.array([0, 3, 6, 9, 12])
        votes = np.array([1, 1, 1, 1, 1])
        out = sorted(cluster_diagonals(diags, votes, slack=3))
        # First-max representative peels [0,3], then [6,9], then [12].
        assert out == [(0, 2), (6, 2), (12, 1)]

    def test_cluster_diagonals_narrow_run_unchanged(self):
        # A run no wider than slack behaves exactly like the old clustering:
        # one cluster, highest-vote representative, votes summed.
        diags = np.array([100, 101, 103])
        votes = np.array([2, 5, 1])
        assert cluster_diagonals(diags, votes, slack=3) == [(101, 8)]

    def test_cluster_diagonals_gap_splits(self):
        diags = np.array([0, 2, 50])
        votes = np.array([3, 1, 4])
        assert sorted(cluster_diagonals(diags, votes, slack=3)) == [
            (0, 4),
            (50, 4),
        ]

    def test_votes_conserved(self):
        rng = np.random.default_rng(7)
        diags = np.unique(rng.integers(0, 60, 30))
        votes = rng.integers(1, 5, diags.size)
        out = cluster_diagonals(diags, votes, slack=3)
        assert sum(v for _, v in out) == int(votes.sum())
        for rep, _ in out:
            assert rep in diags


class TestLongSeeds:
    def test_long_seed_candidates_match_base(self):
        ref = simulate_genome(GenomeSpec(length=5000), seed=8)[0]
        index = GenomeIndex(ref, k=10, seed_len=20)
        seeder = Seeder(index, SeederConfig(seed_len=20))
        for pos in (0, 2000, 4938):
            cands = seeder.candidates(perfect_read(ref, pos))
            assert cands and cands[0].start == pos

    def test_long_seeds_prune_short_spurious_matches(self):
        # Plant a 12-base fragment of the read elsewhere: 10-mer seeding
        # sees a spurious diagonal there, 20-mer seeding cannot.
        ref = simulate_genome(GenomeSpec(length=5000), seed=9)[0]
        codes = np.asarray(ref.codes).copy()
        codes[4000:4012] = codes[1000:1012]
        ref2 = Reference(codes, name="planted")
        read = perfect_read(ref2, 1000)
        base = Seeder(GenomeIndex(ref2, k=10), SeederConfig(min_support=1))
        longs = Seeder(
            GenomeIndex(ref2, k=10, seed_len=20),
            SeederConfig(min_support=1, seed_len=20),
        )
        base_starts = {c.start for c in base.candidates(read)}
        long_starts = {c.start for c in longs.candidates(read)}
        assert 4000 in base_starts
        assert 4000 not in long_starts
        assert 1000 in long_starts

    def test_seeder_rejects_mismatched_seed_len(self):
        ref = simulate_genome(GenomeSpec(length=5000), seed=8)[0]
        index = GenomeIndex(ref, k=10)  # no long table
        with pytest.raises(IndexError_):
            Seeder(index, SeederConfig(seed_len=20))
        index20 = GenomeIndex(ref, k=10, seed_len=20)
        with pytest.raises(IndexError_):
            Seeder(index20, SeederConfig(seed_len=25))

    def test_read_shorter_than_seed_len_unmapped(self):
        ref = simulate_genome(GenomeSpec(length=5000), seed=8)[0]
        seeder = Seeder(
            GenomeIndex(ref, k=10, seed_len=20), SeederConfig(seed_len=20)
        )
        read = perfect_read(ref, 100, length=15)
        assert seeder.candidates(read) == []


class TestQgramFilter:
    def _seeder(self, ref, **kw):
        cfg = SeederConfig(qgram_filter=True, **kw)
        return Seeder(GenomeIndex(ref, k=10), cfg)

    def test_true_location_survives_default_threshold(self):
        ref = simulate_genome(GenomeSpec(length=5000), seed=10)[0]
        seeder = self._seeder(ref)
        for pos in (0, 2500, 4938):
            read = perfect_read(ref, pos)
            read.codes[5] = (read.codes[5] + 1) % 4
            read.codes[33] = (read.codes[33] + 2) % 4
            cands = seeder.candidates(read)
            assert any(c.start == pos and c.strand == 1 for c in cands), pos

    def test_spurious_low_agreement_candidate_dropped(self):
        # A 12-base planted fragment gives a support-2+ diagonal whose
        # window shares almost no other q-grams with the read — filtration
        # must drop it while keeping the true location.
        ref = simulate_genome(GenomeSpec(length=5000), seed=12)[0]
        codes = np.asarray(ref.codes).copy()
        codes[4000:4013] = codes[1000:1013]
        ref2 = Reference(codes, name="planted")
        read = perfect_read(ref2, 1000)
        unfiltered = Seeder(GenomeIndex(ref2, k=10), SeederConfig(min_support=1))
        filtered = Seeder(
            GenomeIndex(ref2, k=10),
            SeederConfig(min_support=1, qgram_filter=True),
        )
        assert 4000 in {c.start for c in unfiltered.candidates(read)}
        f_starts = {c.start for c in filtered.candidates(read)}
        assert 4000 not in f_starts
        assert 1000 in f_starts

    def test_filtered_counter_emitted(self):
        ref = simulate_genome(GenomeSpec(length=5000), seed=12)[0]
        codes = np.asarray(ref.codes).copy()
        codes[4000:4013] = codes[1000:1013]
        ref2 = Reference(codes, name="planted")
        read = perfect_read(ref2, 1000)
        seeder = Seeder(
            GenomeIndex(ref2, k=10),
            SeederConfig(min_support=1, qgram_filter=True),
        )
        with scope() as reg:
            seeder.candidates(read)
            assert reg.snapshot().counters.get("seed.filtered", 0) >= 1

    def test_threshold_zero_keeps_everything(self):
        ref = simulate_genome(GenomeSpec(length=5000), seed=13)[0]
        read = perfect_read(ref, 700)
        plain = Seeder(GenomeIndex(ref, k=10), SeederConfig(min_support=1))
        loose = Seeder(
            GenomeIndex(ref, k=10),
            SeederConfig(min_support=1, qgram_filter=True, filter_threshold=0.0),
        )
        assert [
            (c.start, c.strand, c.support) for c in plain.candidates(read)
        ] == [(c.start, c.strand, c.support) for c in loose.candidates(read)]

    def test_edge_overhanging_true_candidate_survives(self):
        # Reads overhanging either genome edge keep their (clamped-window)
        # true candidate: the window slice must clamp, not wrap.
        ref = simulate_genome(GenomeSpec(length=5000), seed=14)[0]
        seeder = self._seeder(ref)
        left = Read(
            "left",
            np.concatenate(
                [np.asarray([0, 1, 2, 3] * 5, dtype=np.uint8),
                 np.asarray(ref.codes[:42])]
            ),
            np.full(62, 40, dtype=np.uint8),
        )
        cands = seeder.candidates(left)
        assert any(c.band_diagonal == -20 and c.strand == 1 for c in cands)
        right = Read(
            "right",
            np.concatenate(
                [np.asarray(ref.codes[-42:]),
                 np.asarray([0, 1, 2, 3] * 5, dtype=np.uint8)]
            ),
            np.full(62, 40, dtype=np.uint8),
        )
        cands = seeder.candidates(right)
        assert any(c.band_diagonal == 5000 - 42 and c.strand == 1 for c in cands)


class TestSeedMetrics:
    def test_candidates_counted_pre_truncation(self):
        # With a repeat-rich genome and max_candidates=1, seed.candidates
        # must report everything found and candidates_dropped the excess.
        ref, repeats, _ = make_setup(length=20_000, seed=4, n_repeats=1)
        index = GenomeIndex(ref, k=10)
        seeder = Seeder(index, SeederConfig(max_candidates=1))
        read = perfect_read(ref, repeats[0].src_start + 50)
        with scope() as reg:
            cands = seeder.candidates(read)
            snap = reg.snapshot()
        assert len(cands) == 1
        found = snap.counters["seed.candidates"]
        assert found >= 2  # both repeat copies at least
        assert snap.counters["seed.candidates_dropped"] == found - 1

    def test_candidates_per_read_histogram(self):
        ref, _, seeder = make_setup(seed=2)
        with scope() as reg:
            seeder.candidates(perfect_read(ref, 1000))
            snap = reg.snapshot()
        hist = snap.histograms.get("seed.candidates_per_read")
        assert hist is not None and hist["count"] == 1
