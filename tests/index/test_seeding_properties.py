"""Property tests: filtration never silently loses true candidates.

The contract satellite to the q-gram filter: for reads simulated with
planted SNPs and small indels *within the error model* (a handful of
substitutions, indels no longer than the seeder's diagonal slack), any
true-diagonal candidate that plain seeding finds must also survive the
filtration pass at the default threshold.  Filtration may only remove
candidates — and must not remove these.
"""

from __future__ import annotations

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.genome.fastq import Read
from repro.genome.reference import Reference
from repro.index.hashindex import GenomeIndex
from repro.index.kmer import rolling_kmers
from repro.index.seeding import Seeder, SeederConfig
from repro.observability import current as metrics

GENOME_LEN = 4000
READ_LEN = 62
#: Error budget "within the error model": the Illumina profile averages
#: ~1% substitutions per base (≈0.6 per 62 bp read); 4 is already a
#: generous tail, and indels beyond the diagonal slack wouldn't cluster.
MAX_SUBS = 4
MAX_INDEL = 3

_rng = np.random.default_rng(20120609)
_GENOME = Reference(
    _rng.integers(0, 4, GENOME_LEN).astype(np.uint8), name="prop"
)
_INDEX = GenomeIndex(_GENOME, k=10)
_PLAIN = Seeder(_INDEX, SeederConfig())
_FILTERED = Seeder(_INDEX, SeederConfig(qgram_filter=True))


class _ScalarSeeder(Seeder):
    """Oracle: the pre-vectorisation per-cluster filtration loop, verbatim."""

    def _qgram_filter(self, codes, clusters, glen):
        cfg = self.config
        q = cfg.qgram_q
        m = int(codes.size)
        if m < q:
            return clusters
        packed, valid = rolling_kmers(codes, q)
        read_q = np.unique(packed[valid])
        if read_q.size == 0:
            return clusters
        ref_codes = self.index.reference.codes
        reg = metrics()
        kept = []
        for rep, total_votes in clusters:
            lo = max(0, rep - cfg.diagonal_slack)
            hi = min(glen, rep + m + cfg.diagonal_slack)
            window = ref_codes[lo:hi]
            n_window_q = int(window.size) - q + 1
            if n_window_q <= 0:
                reg.inc("seed.filtered")
                continue
            wq_packed, wq_valid = rolling_kmers(window, q)
            window_q = np.unique(wq_packed[wq_valid])
            matches = int(np.isin(read_q, window_q, assume_unique=True).sum())
            capacity = min(int(read_q.size), n_window_q)
            needed = max(1, math.ceil(cfg.filter_threshold * capacity))
            if matches >= needed:
                kept.append((rep, total_votes))
            else:
                reg.inc("seed.filtered")
        return kept


_SCALAR = _ScalarSeeder(_INDEX, SeederConfig(qgram_filter=True))


def _true_hits(cands, pos, slack=3):
    return {
        (c.band_diagonal, c.strand)
        for c in cands
        if c.strand == 1 and abs(c.band_diagonal - pos) <= slack
    }


@st.composite
def corrupted_read(draw):
    pos = draw(st.integers(0, GENOME_LEN - READ_LEN))
    template = np.asarray(_GENOME.codes[pos : pos + READ_LEN]).copy()
    # Planted substitutions (SNP-like mismatches against the reference).
    n_subs = draw(st.integers(0, MAX_SUBS))
    sub_sites = draw(
        st.lists(
            st.integers(0, READ_LEN - 1),
            min_size=n_subs,
            max_size=n_subs,
            unique=True,
        )
    )
    for s in sub_sites:
        template[s] = (template[s] + draw(st.integers(1, 3))) % 4
    # One small indel within the diagonal slack (0 = none).
    indel = draw(st.integers(-MAX_INDEL, MAX_INDEL))
    if indel > 0:  # insertion: novel bases enter the read
        at = draw(st.integers(0, READ_LEN - 1))
        ins = np.asarray(
            draw(
                st.lists(
                    st.integers(0, 3), min_size=indel, max_size=indel
                )
            ),
            dtype=np.uint8,
        )
        template = np.concatenate([template[:at], ins, template[at:]])[:READ_LEN]
    elif indel < 0:  # deletion: read continues further along the genome
        at = draw(st.integers(0, READ_LEN - 1))
        tail = np.asarray(
            _GENOME.codes[pos + READ_LEN : pos + READ_LEN - indel]
        )
        template = np.concatenate([template[:at], template[at - indel :], tail])
        template = template[:READ_LEN]
    read = Read(
        name="prop",
        codes=template.astype(np.uint8),
        quals=np.full(template.size, 40, dtype=np.uint8),
        true_pos=pos,
    )
    return read


@settings(max_examples=150, deadline=None)
@given(read=corrupted_read())
def test_filtration_preserves_true_candidates(read):
    plain_true = _true_hits(_PLAIN.candidates(read), read.true_pos)
    filtered_true = _true_hits(_FILTERED.candidates(read), read.true_pos)
    # Whatever true-diagonal candidates plain seeding finds, filtration
    # at the default threshold must keep (no silent recall loss).
    assert plain_true.issubset(filtered_true), (
        f"filtration dropped true candidates: {plain_true - filtered_true}"
    )


@settings(max_examples=60, deadline=None)
@given(read=corrupted_read())
def test_filtration_only_removes(read):
    plain = {
        (c.band_diagonal, c.strand, c.support)
        for c in _PLAIN.candidates(read)
    }
    filtered = {
        (c.band_diagonal, c.strand, c.support)
        for c in _FILTERED.candidates(read)
    }
    assert filtered.issubset(plain)


@settings(max_examples=100, deadline=None)
@given(
    read=corrupted_read(),
    threshold=st.sampled_from([0.0, 0.1, 0.5, 0.9, 1.0]),
)
def test_vectorized_filter_matches_scalar_oracle(read, threshold):
    """The vectorised filtration pass is decision-identical to the old
    per-cluster loop: same survivors, same order, same support, at every
    threshold (including the degenerate 0.0 and 1.0 ends)."""
    cfg = SeederConfig(qgram_filter=True, filter_threshold=threshold)
    fast = Seeder(_INDEX, cfg)
    oracle = _ScalarSeeder(_INDEX, cfg)
    fast_cands = [
        (c.band_diagonal, c.strand, c.support) for c in fast.candidates(read)
    ]
    oracle_cands = [
        (c.band_diagonal, c.strand, c.support) for c in oracle.candidates(read)
    ]
    assert fast_cands == oracle_cands


def test_vectorized_filter_matches_scalar_on_edge_overhangs():
    """Edge-overhanging candidates (clamped windows, unmeasurable windows)
    filter identically under the vectorised pass and the scalar oracle."""
    cfg = SeederConfig(qgram_filter=True)
    fast = Seeder(_INDEX, cfg)
    oracle = _ScalarSeeder(_INDEX, cfg)
    for pos in (0, 1, GENOME_LEN - READ_LEN, GENOME_LEN - READ_LEN - 1):
        codes = np.asarray(_GENOME.codes[pos : pos + READ_LEN]).copy()
        # Hand-built clusters spanning on-genome, clamped, and off-genome
        # diagonals exercise both the capacity scaling and the
        # unmeasurable-window drop.
        clusters = [
            (-READ_LEN + 2, 2),
            (-5, 2),
            (pos, 5),
            (GENOME_LEN - 10, 2),
            (GENOME_LEN - 2, 2),
        ]
        assert fast._qgram_filter(codes, list(clusters), GENOME_LEN) == (
            oracle._qgram_filter(codes, list(clusters), GENOME_LEN)
        )
