"""Tests for 2-bit k-mer packing."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import IndexError_
from repro.genome.alphabet import encode
from repro.index.kmer import MAX_K, KmerCodec, pack_kmer, rolling_kmers, unpack_kmer


class TestPackUnpack:
    def test_known_values(self):
        assert pack_kmer(encode("A")) == 0
        assert pack_kmer(encode("T")) == 3
        assert pack_kmer(encode("AC")) == 1
        assert pack_kmer(encode("CA")) == 4
        assert pack_kmer(encode("TTTT")) == 255

    def test_unpack_inverse(self):
        assert unpack_kmer(4, 2).tolist() == [1, 0]

    @given(st.text(alphabet="ACGT", min_size=1, max_size=MAX_K))
    def test_round_trip(self, seq):
        codes = encode(seq)
        assert (unpack_kmer(pack_kmer(codes), len(seq)) == codes).all()

    def test_n_rejected(self):
        with pytest.raises(IndexError_):
            pack_kmer(encode("ACN"))

    def test_k_limits(self):
        with pytest.raises(IndexError_):
            pack_kmer(encode("A" * (MAX_K + 1)))
        with pytest.raises(IndexError_):
            unpack_kmer(0, 0)

    def test_unpack_range_check(self):
        with pytest.raises(IndexError_):
            unpack_kmer(16, 2)  # 2-mers only reach 15
        with pytest.raises(IndexError_):
            unpack_kmer(-1, 2)


class TestRollingKmers:
    def test_matches_pack_kmer(self):
        codes = encode("ACGTACGT")
        packed, valid = rolling_kmers(codes, 3)
        assert packed.size == 6
        assert valid.all()
        for i in range(6):
            assert packed[i] == pack_kmer(codes[i : i + 3])

    def test_n_windows_masked(self):
        codes = encode("ACNGT")
        packed, valid = rolling_kmers(codes, 2)
        assert valid.tolist() == [True, False, False, True]

    def test_short_sequence_empty(self):
        packed, valid = rolling_kmers(encode("AC"), 5)
        assert packed.size == 0 and valid.size == 0

    @given(st.text(alphabet="ACGTN", min_size=1, max_size=60),
           st.integers(min_value=1, max_value=8))
    def test_rolling_property(self, seq, k):
        codes = encode(seq)
        packed, valid = rolling_kmers(codes, k)
        expected_count = max(0, len(seq) - k + 1)
        assert packed.size == expected_count
        for i in range(expected_count):
            window = codes[i : i + k]
            if (window > 3).any():
                assert not valid[i]
            else:
                assert valid[i]
                assert packed[i] == pack_kmer(window)


class TestKmerCodec:
    def test_bound_k(self):
        codec = KmerCodec(4)
        assert codec.n_kmers == 256
        codes = encode("ACGT")
        assert codec.unpack(codec.pack(codes)).tolist() == codes.tolist()

    def test_wrong_length_rejected(self):
        with pytest.raises(IndexError_):
            KmerCodec(3).pack(encode("ACGT"))

    def test_bad_k_rejected(self):
        with pytest.raises(IndexError_):
            KmerCodec(0)
