"""Integration: metric invariants over real pipeline runs.

Three layers:

* serial run — ``pipeline.reads`` equals the input read count, stage span
  times sum to no more than the measured wall time, the span tree nests as
  documented;
* serial vs multiprocessing — the topology-invariant counters (reads,
  pairs, DP cells, caller tallies) are *identical* regardless of worker
  count, and gauges agree;
* CLI — ``repro call --metrics-json`` emits the schema'd document and the
  same invariants hold between ``--workers 1`` and ``--workers 4``.
"""

import json
import time

import pytest

from repro.cli import main
from repro.experiments.workload import build_workload
from repro.observability import MetricsRegistry, scope, use
from repro.pipeline.config import PipelineConfig
from repro.pipeline.gnumap import GnumapSnp
from repro.pipeline.mp_backend import run_multiprocessing

#: Counters that must not depend on how the work is partitioned.
#: (pipeline.batches and phmm.batches legitimately differ with chunking.)
INVARIANT_COUNTERS = (
    "pipeline.reads",
    "pipeline.reads_mapped",
    "pipeline.reads_unmapped",
    "pipeline.pairs",
    "seed.reads",
    "seed.candidates",
    "phmm.pairs",
    "phmm.forward_cells",
    "phmm.backward_cells",
    "caller.positions_seen",
    "caller.positions_tested",
    "caller.snps",
)


@pytest.fixture(scope="module")
def workload():
    wl = build_workload(scale="tiny", seed=31)
    return wl


@pytest.fixture(scope="module")
def reads(workload):
    return workload.reads[:240]


class TestSerialInvariants:
    def test_counts_spans_and_wall_time(self, workload, reads):
        t0 = time.perf_counter()
        with scope() as reg:
            pipe = GnumapSnp(workload.reference, PipelineConfig())
            result = pipe.run(reads)
        wall = time.perf_counter() - t0
        snap = reg.snapshot()

        # Counter invariants against ground truth.
        assert snap.counters["pipeline.reads"] == len(reads)
        assert snap.counters["seed.reads"] == len(reads)
        assert (
            snap.counters["pipeline.reads_mapped"]
            + snap.counters["pipeline.reads_unmapped"]
            == len(reads)
        )
        assert snap.counters["pipeline.reads_mapped"] == result.stats.n_mapped
        assert snap.counters["pipeline.pairs"] == result.stats.n_pairs
        assert snap.counters["phmm.pairs"] == result.stats.n_pairs
        assert snap.counters["caller.snps"] == len(result.snps)
        assert snap.gauges["pipeline.peak_accumulator_bytes"] > 0

        # Span tree shape and time accounting.
        assert snap.span_count("map_reads") == 1
        children = snap.span_node("map_reads")["children"]
        assert {"seed", "align", "accumulate"} <= set(children)
        child_sum = sum(node["seconds"] for node in children.values())
        assert child_sum <= snap.span_seconds("map_reads") + 1e-9
        assert snap.total_span_seconds() <= wall + 1e-9

        # The legacy flat timers mirror the spans exactly.
        for stage in ("seed", "align", "accumulate", "call"):
            assert result.timers[stage].elapsed == pytest.approx(
                snap.leaf_totals()[stage][0]
            )

    def test_cells_match_batch_geometry(self, workload, reads):
        with scope() as reg:
            pipe = GnumapSnp(workload.reference, PipelineConfig())
            _, stats = pipe.map_reads(reads)
        snap = reg.snapshot()
        read_len = len(reads[0])
        width = read_len + 2 * PipelineConfig().pad
        expected = stats.n_pairs * read_len * width
        assert snap.counters["phmm.forward_cells"] == expected
        assert snap.counters["phmm.backward_cells"] == expected


class TestSerialVsMultiprocessing:
    def test_counter_totals_identical_across_worker_counts(
        self, workload, reads
    ):
        with scope() as serial_reg:
            serial = run_multiprocessing(
                workload.reference, reads, PipelineConfig(), n_workers=1
            )
        with scope() as mp_reg:
            parallel = run_multiprocessing(
                workload.reference, reads, PipelineConfig(), n_workers=3
            )
        s, p = serial_reg.snapshot(), mp_reg.snapshot()
        for name in INVARIANT_COUNTERS:
            assert s.counters[name] == p.counters[name], name
        assert (
            s.gauges["pipeline.peak_accumulator_bytes"]
            == p.gauges["pipeline.peak_accumulator_bytes"]
        )
        assert [c.pos for c in serial.snps] == [c.pos for c in parallel.snps]
        # The mp run reports the merged worker tree plus its own stages.
        assert p.span_count("map_parallel") == 1
        # One map_reads span per dispatched chunk (chunks = workers x
        # chunks-per-worker, capped by the read count).
        n_chunks = min(len(reads), 3 * PipelineConfig().parallel.chunks_per_worker)
        assert p.span_count("map_reads") == n_chunks
        assert p.span_seconds("map_reads/align") > 0


class TestCliMetricsJson:
    @pytest.fixture(scope="class")
    def sim_files(self, tmp_path_factory):
        d = tmp_path_factory.mktemp("cli_metrics")
        ref, reads, truth = d / "ref.fa", d / "reads.fq", d / "truth.tsv"
        rc = main([
            "simulate", "--scale", "tiny", "--seed", "13",
            "--reference", str(ref), "--reads", str(reads),
            "--truth", str(truth),
        ])
        assert rc == 0
        return d, ref, reads

    def _call(self, d, ref, reads, workers):
        out = d / f"metrics_w{workers}.json"
        with use(MetricsRegistry()):
            rc = main([
                "call", str(ref), str(reads),
                "-o", str(d / f"snps_w{workers}.tsv"),
                "--workers", str(workers),
                "--metrics-json", str(out),
            ])
        assert rc == 0
        return json.loads(out.read_text())

    def test_workers_1_vs_4_emit_identical_counter_totals(self, sim_files):
        d, ref, reads = sim_files
        doc1 = self._call(d, ref, reads, workers=1)
        doc4 = self._call(d, ref, reads, workers=4)
        for doc in (doc1, doc4):
            assert doc["schema"] == "repro.metrics/v2"
            assert set(doc) == {
                "schema", "counters", "gauges", "histograms", "spans",
                "totals", "manifest",
            }
            assert doc["manifest"]["schema"] == "repro.manifest/v1"
        # The parallel run records the per-chunk latency distribution.
        assert doc4["histograms"]["mp.chunk_map_seconds"]["count"] > 0
        for name in INVARIANT_COUNTERS:
            assert doc1["counters"][name] == doc4["counters"][name], name
        # Gauges agree except the mp-only worker-count and pool gauges.
        assert doc4["gauges"].pop("mp.workers") == 4
        assert doc4["gauges"].pop("mp.workers_effective") == 4
        # The CLI's parallel path runs over the persistent shared-memory
        # pool: the published genome+index bytes are reported.
        assert doc4["gauges"].pop("mp.shm_bytes") > 0
        assert doc1["gauges"] == doc4["gauges"]
        # Times are consistent, not identical: both runs report a positive
        # span total and every tree totals its children.
        for doc in (doc1, doc4):
            assert doc["totals"]["span_seconds"] > 0

            def check(tree):
                for node in tree.values():
                    child_sum = sum(
                        c["seconds"] for c in node["children"].values()
                    )
                    assert child_sum <= node["seconds"] + 1e-9
                    check(node["children"])

            check(doc["spans"])
