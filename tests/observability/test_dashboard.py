"""``repro top``: exposition parser, frame rendering, the scrape loop.

The parser is the inverse of :mod:`promexport` and the validator CI uses;
``render_top`` is a pure function tested frame-by-frame; ``run_top`` gets
an injected fetcher so the loop runs without sockets.
"""

from __future__ import annotations

import io
import math

import pytest

from repro.errors import ObservabilityError
from repro.observability import parse_exposition, render_top, run_top
from repro.observability.dashboard import Exposition


class TestParser:
    def test_samples_types_and_labels(self):
        text = (
            "# HELP pipeline_reads_total reads seen\n"
            "# TYPE pipeline_reads_total counter\n"
            "pipeline_reads_total 1936\n"
            "# TYPE mp_worker_busy gauge\n"
            'mp_worker_busy{worker="11"} 1\n'
            'mp_worker_busy{worker="12"} 0\n'
            'odd_label{text="a\\"b\\\\c"} 2.5\n'
        )
        exp = parse_exposition(text)
        assert exp.value("pipeline_reads_total") == 1936
        assert exp.types["pipeline_reads_total"] == "counter"
        assert exp.value("mp_worker_busy", worker="11") == 1
        assert exp.value("mp_worker_busy", worker="12") == 0
        ((labels, value),) = exp.series("odd_label")
        assert labels == {"text": 'a"b\\c'} and value == 2.5

    def test_inf_values(self):
        exp = parse_exposition('h_bucket{le="+Inf"} 5\n')
        ((labels, value),) = exp.series("h_bucket")
        assert value == 5

    def test_malformed_line_raises(self):
        with pytest.raises(ObservabilityError):
            parse_exposition("this is ! not a sample\n")
        with pytest.raises(ObservabilityError):
            parse_exposition("name notanumber\n")

    def test_histogram_quantile_from_cumulative_buckets(self):
        text = (
            'h_bucket{le="0.1"} 2\n'
            'h_bucket{le="1"} 9\n'
            'h_bucket{le="+Inf"} 10\n'
            "h_sum 5.5\nh_count 10\n"
        )
        exp = parse_exposition(text)
        assert exp.histogram_quantile("h", 0.1) == pytest.approx(0.1)
        assert exp.histogram_quantile("h", 0.5) == pytest.approx(1.0)
        # Mass past the last finite bound clamps to the largest finite le.
        assert exp.histogram_quantile("h", 1.0) == pytest.approx(1.0)
        assert math.isnan(exp.histogram_quantile("missing", 0.5))
        with pytest.raises(ObservabilityError):
            exp.histogram_quantile("h", 1.5)


def _scrape(reads=1000, workers=True):
    exp = Exposition()
    exp.add("pipeline_reads_total", {}, float(reads))
    exp.add("seed_reads_total", {}, float(reads))
    exp.add("seed_candidates_total", {}, float(reads * 3))
    exp.add("phmm_forward_cells_total", {}, float(reads * 500))
    exp.add("phmm_backward_cells_total", {}, float(reads * 500))
    exp.add("mp_chunks_total", {}, 8.0)
    exp.add("mp_workers", {}, 2.0)
    exp.add("mp_reads_per_second", {}, 960.0)
    exp.add("mp_dp_cells_per_second", {}, 4.8e5)
    exp.add("obs_telemetry_deltas_total", {}, 17.0)
    if workers:
        for pid, busy in (("11", 1.0), ("12", 0.0)):
            exp.add("mp_worker_heartbeat_age_seconds", {"worker": pid}, 0.2)
            exp.add("mp_worker_busy", {"worker": pid}, busy)
            exp.add("mp_worker_busy_seconds", {"worker": pid}, 1.5 * busy)
            exp.add("mp_worker_stalled", {"worker": pid}, 0.0)
            exp.add("mp_worker_reads_per_second", {"worker": pid}, 480.0)
            exp.add("mp_worker_dp_cells_per_second", {"worker": pid}, 2.4e5)
    return exp


class TestRenderTop:
    def test_frame_contains_rates_and_worker_table(self):
        frame = render_top(
            _scrape(2000),
            _scrape(1000),
            elapsed=1.0,
            source="http://x/metrics",
            clock_text="12:00:00",
        )
        assert "repro top - http://x/metrics" in frame
        assert "reads/s 1.0k" in frame  # (2000-1000)/1s
        assert "candidates/read 3.00" in frame
        assert "worker" in frame and "11" in frame and "12" in frame
        assert "busy" in frame and "idle" in frame

    def test_first_frame_has_no_rates(self):
        frame = render_top(
            _scrape(), None, 0.0, source="s", clock_text="t"
        )
        assert "reads/s -" in frame

    def test_stalled_worker_is_flagged(self):
        curr = _scrape()
        curr.add("mp_worker_stalled", {"worker": "11"}, 1.0)
        frame = render_top(curr, None, 0.0, source="s", clock_text="t")
        assert "STALLED" in frame

    def test_no_workers_fallback(self):
        frame = render_top(
            _scrape(workers=False), None, 0.0, source="s", clock_text="t"
        )
        assert "(no workers publishing yet)" in frame


class TestRunTop:
    def test_finite_iterations_render_frames(self):
        scrapes = iter([_scrape(1000), _scrape(2000), _scrape(3000)])
        out = io.StringIO()
        rc = run_top(
            "http://fake/metrics",
            interval=0.01,
            iterations=3,
            clear=False,
            out=out,
            fetch_fn=lambda url: next(scrapes),
        )
        assert rc == 0
        frames = out.getvalue()
        assert frames.count("repro top - http://fake/metrics") == 3
        # Only the first frame lacks a rate; later frames compute one from
        # the 1000-read counter advance, whatever the loop's elapsed.
        assert frames.count("reads/s -") == 1

    def test_scrape_failure_raises_in_finite_mode(self):
        def fail(url):
            raise OSError("connection refused")

        with pytest.raises(ObservabilityError):
            run_top(
                "http://down/metrics",
                interval=0.01,
                iterations=1,
                clear=False,
                out=io.StringIO(),
                fetch_fn=fail,
            )

    def test_bad_interval_rejected(self):
        with pytest.raises(ObservabilityError):
            run_top("http://x/metrics", interval=0.0, iterations=1)

    def test_clear_writes_ansi_reset(self):
        out = io.StringIO()
        run_top(
            "u",
            interval=0.01,
            iterations=1,
            clear=True,
            out=out,
            fetch_fn=lambda url: _scrape(),
        )
        assert out.getvalue().startswith("\x1b[2J\x1b[H")
