"""Golden-file regression test for the ``repro.metrics/v2`` JSON schema.

Downstream tooling parses ``--metrics-json`` output; this test pins the
exact document layout (key order, nesting, totals) for a synthetic,
fully deterministic snapshot.  If you change the schema intentionally,
bump :data:`repro.observability.export.SCHEMA` and regenerate the golden
file (instructions in the assertion message).

The previous-generation document (``repro.metrics/v1``, no histograms and
no manifest) stays readable: ``metrics_golden_v1.json`` is the pre-bump
golden file verbatim and must keep loading.
"""

import json
import pathlib

import pytest

from repro.errors import ObservabilityError
from repro.observability import (
    SCHEMA,
    SCHEMA_V1,
    MetricsRegistry,
    read_metrics_json,
    to_json,
    to_json_dict,
    write_metrics_json,
)

GOLDEN = pathlib.Path(__file__).parent.parent / "data" / "metrics_golden.json"
GOLDEN_V1 = pathlib.Path(__file__).parent.parent / "data" / "metrics_golden_v1.json"


def build_reference_snapshot():
    """A deterministic snapshot shaped like a real pipeline run."""
    reg = MetricsRegistry()
    reg.inc("pipeline.reads", 1000)
    reg.inc("pipeline.reads_mapped", 990)
    reg.inc("pipeline.pairs", 1503)
    reg.inc("phmm.forward_cells", 6012000)
    reg.inc("caller.snps", 12)
    reg.gauge_max("index.bytes", 524288)
    reg.gauge_max("pipeline.peak_accumulator_bytes", 200000)
    reg.record_span(("index_build",), 0.125)
    reg.record_span(("map_reads",), 2.5)
    reg.record_span(("map_reads", "seed"), 0.5, count=1000)
    reg.record_span(("map_reads", "align"), 1.75, count=4)
    reg.record_span(("map_reads", "accumulate"), 0.25, count=4)
    reg.record_span(("call",), 0.0625)
    reg.observe("mp.chunk_map_seconds", 0.25)
    reg.observe("mp.chunk_map_seconds", 0.5, count=2)
    reg.observe("mp.chunk_map_seconds", 1.0)
    return reg.snapshot()


class TestMetricsJsonSchema:
    def test_matches_golden_file(self):
        got = to_json(build_reference_snapshot())
        want = GOLDEN.read_text()
        assert got == want, (
            "metrics JSON schema drifted from tests/data/metrics_golden.json; "
            "if intentional, bump SCHEMA and regenerate the golden file by "
            "writing to_json(build_reference_snapshot()) to it"
        )

    def test_schema_tag_and_sections(self):
        doc = to_json_dict(build_reference_snapshot())
        assert doc["schema"] == SCHEMA == "repro.metrics/v2"
        assert set(doc) == {
            "schema", "counters", "gauges", "histograms", "spans", "totals",
        }
        assert doc["totals"]["span_seconds"] == 0.125 + 2.5 + 0.0625
        seed = doc["spans"]["map_reads"]["children"]["seed"]
        assert set(seed) == {"seconds", "count", "children"}

    def test_histogram_section_has_quantiles_and_string_buckets(self):
        doc = json.loads(to_json(build_reference_snapshot()))
        hist = doc["histograms"]["mp.chunk_map_seconds"]
        assert hist["count"] == 4
        assert hist["min"] == 0.25
        assert hist["max"] == 1.0
        # p50 of [0.25, 0.5, 0.5, 1.0] covers the 0.5 bucket, whose upper
        # bound is exactly 0.5 on the fixed GROWTH=2**0.25 grid.
        assert hist["p50"] == pytest.approx(0.5)
        assert hist["p99"] == pytest.approx(1.0)
        assert all(isinstance(k, str) for k in hist["buckets"])

    def test_manifest_embeds_when_supplied(self):
        doc = to_json_dict(build_reference_snapshot(), manifest={"seed": 7})
        assert doc["manifest"] == {"seed": 7}

    def test_counters_stay_integers_in_json(self):
        doc = json.loads(to_json(build_reference_snapshot()))
        assert doc["counters"]["pipeline.reads"] == 1000
        assert isinstance(doc["counters"]["pipeline.reads"], int)

    def test_file_roundtrip(self, tmp_path):
        snap = build_reference_snapshot()
        path = tmp_path / "metrics.json"
        write_metrics_json(str(path), snap)
        assert read_metrics_json(str(path)) == snap

    def test_v1_document_still_reads(self):
        with open(GOLDEN_V1) as fh:
            assert json.load(fh)["schema"] == SCHEMA_V1
        snap = read_metrics_json(str(GOLDEN_V1))
        assert snap.counters["pipeline.reads"] == 1000
        assert snap.histograms == {}

    def test_unknown_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "repro.metrics/v99"}))
        with pytest.raises(ObservabilityError, match="unknown metrics schema"):
            read_metrics_json(str(path))
