"""Golden-file regression test for the ``repro.metrics/v1`` JSON schema.

Downstream tooling parses ``--metrics-json`` output; this test pins the
exact document layout (key order, nesting, totals) for a synthetic,
fully deterministic snapshot.  If you change the schema intentionally,
bump :data:`repro.observability.export.SCHEMA` and regenerate the golden
file (instructions in the assertion message).
"""

import json
import pathlib

from repro.observability import (
    SCHEMA,
    MetricsRegistry,
    read_metrics_json,
    to_json,
    to_json_dict,
    write_metrics_json,
)

GOLDEN = pathlib.Path(__file__).parent.parent / "data" / "metrics_golden.json"


def build_reference_snapshot():
    """A deterministic snapshot shaped like a real pipeline run."""
    reg = MetricsRegistry()
    reg.inc("pipeline.reads", 1000)
    reg.inc("pipeline.reads_mapped", 990)
    reg.inc("pipeline.pairs", 1503)
    reg.inc("phmm.forward_cells", 6012000)
    reg.inc("caller.snps", 12)
    reg.gauge_max("index.bytes", 524288)
    reg.gauge_max("pipeline.peak_accumulator_bytes", 200000)
    reg.record_span(("index_build",), 0.125)
    reg.record_span(("map_reads",), 2.5)
    reg.record_span(("map_reads", "seed"), 0.5, count=1000)
    reg.record_span(("map_reads", "align"), 1.75, count=4)
    reg.record_span(("map_reads", "accumulate"), 0.25, count=4)
    reg.record_span(("call",), 0.0625)
    return reg.snapshot()


class TestMetricsJsonSchema:
    def test_matches_golden_file(self):
        got = to_json(build_reference_snapshot())
        want = GOLDEN.read_text()
        assert got == want, (
            "metrics JSON schema drifted from tests/data/metrics_golden.json; "
            "if intentional, bump SCHEMA and regenerate the golden file by "
            "writing to_json(build_reference_snapshot()) to it"
        )

    def test_schema_tag_and_sections(self):
        doc = to_json_dict(build_reference_snapshot())
        assert doc["schema"] == SCHEMA == "repro.metrics/v1"
        assert set(doc) == {"schema", "counters", "gauges", "spans", "totals"}
        assert doc["totals"]["span_seconds"] == 0.125 + 2.5 + 0.0625
        seed = doc["spans"]["map_reads"]["children"]["seed"]
        assert set(seed) == {"seconds", "count", "children"}

    def test_counters_stay_integers_in_json(self):
        doc = json.loads(to_json(build_reference_snapshot()))
        assert doc["counters"]["pipeline.reads"] == 1000
        assert isinstance(doc["counters"]["pipeline.reads"], int)

    def test_file_roundtrip(self, tmp_path):
        snap = build_reference_snapshot()
        path = tmp_path / "metrics.json"
        write_metrics_json(str(path), snap)
        assert read_metrics_json(str(path)) == snap
