"""Flight-recorder tracing: enablement, lanes, ring bounds, overhead.

The overhead contract is part of the design (DESIGN.md §11): with tracing
disabled every hook is a flag check and a return, cheap enough to leave
permanently compiled into the hot paths.
"""

import os
import threading
import time

import pytest

import repro.observability.trace as trace
from repro.errors import ObservabilityError
from repro.observability import MetricsRegistry, scope, span, use
from repro.observability.registry import (
    DEFAULT_EVENT_CAPACITY,
    event_capacity,
    set_event_capacity,
)


@pytest.fixture(autouse=True)
def restore_trace_state():
    """Every test leaves the module-global trace state as it found it."""
    was_enabled = trace.enabled()
    label = trace.process_label()
    capacity = event_capacity()
    yield
    (trace.enable if was_enabled else trace.disable)()
    trace.set_process_label(label)
    trace.set_thread_label(None)
    set_event_capacity(capacity)


class TestEnablement:
    def test_disabled_by_default_records_nothing(self):
        assert not trace.enabled()
        with scope() as reg:
            trace.instant("mp.chunk_retry", chunk=1)
            trace.counter_sample("mp.chunk_retries", 1)
            with span("map_reads"):
                pass
            snap = reg.snapshot()
        assert snap.events == ()
        assert snap.span_count("map_reads") == 1  # spans still aggregate

    def test_enable_disable_roundtrip(self):
        trace.enable()
        assert trace.enabled()
        trace.disable()
        assert not trace.enabled()

    def test_enable_with_capacity_resizes_ring(self):
        trace.enable(capacity=17)
        assert event_capacity() == 17

    def test_bad_capacity_rejected(self):
        with pytest.raises(ObservabilityError):
            set_event_capacity(0)

    def test_disabled_overhead_is_negligible(self):
        """100k disabled instants well under 0.15s — the <2% pipeline
        budget with orders of magnitude to spare."""
        assert not trace.enabled()
        t0 = time.perf_counter()
        for _ in range(100_000):
            trace.instant("mp.chunk_retry", chunk=1, attempt=0)
        elapsed = time.perf_counter() - t0
        assert elapsed < 0.15, f"disabled-path overhead {elapsed:.3f}s"


class TestEventsAndLanes:
    def test_instant_carries_full_lane_identity(self):
        trace.enable()
        trace.set_process_label("main")
        with scope() as reg:
            trace.instant("mp.worker_death", chunk=2, attempt=1)
            snap = reg.snapshot()
        (ev,) = snap.instants("mp.worker_death")
        ts_us, ph, name, pid, plabel, tid, tlabel, args = ev
        assert ph == "i" and name == "mp.worker_death"
        assert pid == os.getpid() and plabel == "main"
        assert tid == threading.get_ident()
        assert tlabel == threading.current_thread().name
        assert args == {"chunk": 2, "attempt": 1}
        assert abs(ts_us - time.time_ns() // 1000) < 60_000_000

    def test_span_emits_begin_end_pair(self):
        trace.enable()
        with scope() as reg:
            with span("align"):
                pass
            snap = reg.snapshot()
        phases = [(ev[1], ev[2]) for ev in snap.events]
        assert phases == [("B", "align"), ("E", "align")]
        assert snap.events[0][0] <= snap.events[1][0]

    def test_thread_lane_override_and_restore(self):
        trace.enable()
        with scope() as reg:
            with trace.thread_lane("rank-7"):
                trace.instant("cluster.rank_start")
            trace.instant("pipeline.done")
            snap = reg.snapshot()
        labels = [ev[6] for ev in snap.events]
        assert labels == ["rank-7", threading.current_thread().name]

    def test_rank_threads_get_lane_from_thread_name(self):
        trace.enable()
        reg = MetricsRegistry()

        def body():
            with use(reg):
                trace.instant("cluster.rank_step")

        t = threading.Thread(target=body, name="rank-3")
        t.start()
        t.join()
        (ev,) = reg.snapshot().instants("cluster.rank_step")
        assert ev[6] == "rank-3"

    def test_counter_sample_is_a_c_phase_event(self):
        trace.enable()
        with scope() as reg:
            trace.counter_sample("mp.chunk_retries", 3)
            snap = reg.snapshot()
        (ev,) = snap.events
        assert ev[1] == "C" and ev[7] == {"value": 3}


class TestRingBuffer:
    def test_default_capacity(self):
        assert DEFAULT_EVENT_CAPACITY == 65536

    def test_newest_events_win_and_drops_are_counted(self):
        trace.enable(capacity=5)
        reg = MetricsRegistry()  # fresh ring at the new capacity
        with use(reg):
            for i in range(12):
                trace.instant("obs.test_tick", i=i)
        snap = reg.snapshot()
        assert len(snap.events) == 5
        assert [ev[7]["i"] for ev in snap.events] == [7, 8, 9, 10, 11]
        assert snap.counter("obs.trace_dropped") == 7

    def test_absorb_extends_ring_and_accounts_drops(self):
        trace.enable(capacity=4)
        worker = MetricsRegistry()
        with use(worker):
            for i in range(3):
                trace.instant("obs.test_tick", i=i)
        parent = MetricsRegistry()
        with use(parent):
            for i in range(3, 6):
                trace.instant("obs.test_tick", i=i)
        parent.absorb(worker.snapshot())
        snap = parent.snapshot()
        assert len(snap.events) == 4
        assert snap.counter("obs.trace_dropped") == 2

    def test_default_capacity_overflow_bounds_memory_and_counts_drops(self):
        """Flooding past the full 65536-slot default ring keeps exactly the
        newest ``capacity`` events, surfaces every drop in
        ``obs.trace_dropped``, and still exports a valid Chrome trace."""
        import json

        from repro.observability import to_chrome_trace

        trace.enable()  # default capacity
        assert event_capacity() == DEFAULT_EVENT_CAPACITY
        overflow = 2048
        total = DEFAULT_EVENT_CAPACITY + overflow
        reg = MetricsRegistry()  # fresh ring at the default capacity
        with use(reg):
            for i in range(total):
                trace.instant("obs.test_tick", i=i)
        snap = reg.snapshot()
        assert len(snap.events) == DEFAULT_EVENT_CAPACITY
        assert snap.counter("obs.trace_dropped") == overflow
        # Oldest events fell off the front; the newest survived intact.
        kept = [ev[7]["i"] for ev in snap.events]
        assert kept[0] == overflow
        assert kept[-1] == total - 1
        # The saturated ring still renders to well-formed Chrome trace JSON.
        doc = json.loads(json.dumps(to_chrome_trace(snap)))
        ticks = [
            ev for ev in doc["traceEvents"] if ev.get("name") == "obs.test_tick"
        ]
        assert len(ticks) == DEFAULT_EVENT_CAPACITY

    def test_clear_resets_events_and_drop_count(self):
        trace.enable(capacity=2)
        reg = MetricsRegistry()
        with use(reg):
            for i in range(5):
                trace.instant("obs.test_tick", i=i)
        reg.clear()
        snap = reg.snapshot()
        assert snap.events == ()
        assert snap.counter("obs.trace_dropped") == 0


class TestSnapshotTransport:
    def test_events_survive_pickle_and_merge_by_concatenation(self):
        import pickle

        trace.enable()
        with scope() as reg:
            trace.instant("mp.chunk_begin", chunk=0)
            snap = reg.snapshot()
        other = pickle.loads(pickle.dumps(snap))
        merged = snap.merge(other)
        assert len(merged.events) == 2
        assert merged.events[0] == merged.events[1]

    def test_events_excluded_from_json_dict(self):
        trace.enable()
        with scope() as reg:
            trace.instant("mp.chunk_begin", chunk=0)
            snap = reg.snapshot()
        assert "events" not in snap.as_dict()
