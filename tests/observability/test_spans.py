"""Span nesting, exception safety, and thread isolation."""

import threading

import pytest

from repro.errors import ObservabilityError
from repro.observability import MetricsRegistry, current_path, detached, span, use


class TestSpanNesting:
    def test_nested_spans_build_a_tree(self):
        reg = MetricsRegistry()
        with use(reg):
            with span("outer"):
                with span("inner"):
                    pass
                with span("inner"):
                    pass
        snap = reg.snapshot()
        assert snap.span_count("outer") == 1
        assert snap.span_count("outer/inner") == 2
        assert snap.span_node("inner") is None  # nested, not top-level
        assert snap.span_seconds("outer") >= 0.0

    def test_sibling_spans_do_not_nest(self):
        reg = MetricsRegistry()
        with use(reg):
            with span("a"):
                pass
            with span("b"):
                pass
        snap = reg.snapshot()
        assert snap.span_count("a") == 1
        assert snap.span_count("b") == 1
        assert snap.span_node("a")["children"] == {}

    def test_reentering_same_name_accumulates(self):
        reg = MetricsRegistry()
        with use(reg):
            for _ in range(5):
                with span("stage"):
                    pass
        assert reg.snapshot().span_count("stage") == 5

    def test_current_path_tracks_stack(self):
        reg = MetricsRegistry()
        with use(reg):
            assert current_path() == ()
            with span("a"):
                assert current_path() == ("a",)
                with span("b"):
                    assert current_path() == ("a", "b")
                assert current_path() == ("a",)
            assert current_path() == ()


class TestDetached:
    def test_detached_roots_spans_and_restores_stack(self):
        """Worker entry points detach so inherited open spans (fork start
        method) don't silently re-root the worker's tree."""
        reg = MetricsRegistry()
        with use(reg):
            with span("outer"):
                with detached():
                    assert current_path() == ()
                    with span("chunk"):
                        pass
                assert current_path() == ("outer",)
        snap = reg.snapshot()
        assert snap.span_count("chunk") == 1  # top-level, not outer/chunk
        assert snap.span_node("outer")["children"] == {}


class TestSpanExceptionSafety:
    def test_span_records_time_when_body_raises(self):
        reg = MetricsRegistry()
        with use(reg):
            with pytest.raises(ValueError):
                with span("failing"):
                    raise ValueError("boom")
        snap = reg.snapshot()
        assert snap.span_count("failing") == 1
        assert snap.span_seconds("failing") >= 0.0

    def test_stack_restored_after_exception(self):
        reg = MetricsRegistry()
        with use(reg):
            with pytest.raises(RuntimeError):
                with span("outer"):
                    with span("inner"):
                        raise RuntimeError
            assert current_path() == ()
            with span("after"):
                pass
        snap = reg.snapshot()
        # "after" must be top-level, not trapped under the failed spans.
        assert snap.span_count("after") == 1
        assert snap.span_count("outer/inner") == 1

    def test_bad_span_names_rejected(self):
        with pytest.raises(ObservabilityError):
            with span(""):
                pass
        with pytest.raises(ObservabilityError):
            with span("a/b"):
                pass


class TestSpanThreads:
    def test_threads_have_independent_stacks(self):
        reg = MetricsRegistry()
        barrier = threading.Barrier(2)
        paths = {}

        def worker(name):
            with use(reg):
                with span(name):
                    barrier.wait()  # both spans open simultaneously
                    paths[name] = current_path()

        threads = [
            threading.Thread(target=worker, args=(n,)) for n in ("t1", "t2")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert paths == {"t1": ("t1",), "t2": ("t2",)}
        snap = reg.snapshot()
        # Both land as top-level spans in the shared registry, not nested.
        assert snap.span_count("t1") == 1
        assert snap.span_count("t2") == 1
