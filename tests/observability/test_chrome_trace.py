"""Chrome trace-event export: golden layout, lane metadata, ordering."""

import json
import pathlib

import repro.observability.trace as trace
from repro.observability import (
    MetricsRegistry,
    to_chrome_trace,
    use,
    write_chrome_trace,
)

GOLDEN = (
    pathlib.Path(__file__).parent.parent / "data" / "chrome_trace_golden.json"
)

#: Synthetic fixed timeline: a main-process span wrapping a chunk dispatch,
#: a worker-process chunk with a retry instant, and a counter sample.
#: (ts_us, ph, name, pid, process_label, tid, thread_label, args)
FIXED_EVENTS = (
    (1000, "B", "map_parallel", 100, "main", 11, "MainThread", None),
    (1050, "i", "mp.chunk_dispatch", 100, "main", 11, "MainThread",
     {"chunk": 0, "attempt": 0, "worker_pid": 200}),
    (1100, "i", "mp.chunk_begin", 200, "worker", 21, "MainThread",
     {"chunk": 0, "attempt": 0}),
    (1200, "i", "mp.worker_death", 100, "main", 11, "MainThread",
     {"chunk": 0, "attempt": 0, "detail": "worker died (exitcode=-9)"}),
    (1250, "i", "mp.chunk_retry", 100, "main", 11, "MainThread",
     {"chunk": 0, "attempt": 1}),
    (1260, "C", "mp.chunk_retries", 100, "main", 11, "MainThread",
     {"value": 1}),
    (1300, "B", "map_reads", 201, "worker", 31, "MainThread", None),
    (1400, "E", "map_reads", 201, "worker", 31, "MainThread", None),
    (1500, "E", "map_parallel", 100, "main", 11, "MainThread", None),
)


class TestChromeTraceExport:
    def test_matches_golden_file(self):
        doc = to_chrome_trace(FIXED_EVENTS, manifest={"seed": 2012})
        got = json.dumps(doc, indent=2, sort_keys=True) + "\n"
        want = GOLDEN.read_text()
        assert got == want, (
            "Chrome trace layout drifted from tests/data/"
            "chrome_trace_golden.json; if intentional, regenerate it from "
            "to_chrome_trace(FIXED_EVENTS, manifest={'seed': 2012})"
        )

    def test_document_shape(self):
        doc = to_chrome_trace(FIXED_EVENTS)
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        assert doc["displayTimeUnit"] == "ms"

    def test_every_process_and_thread_has_metadata(self):
        doc = to_chrome_trace(FIXED_EVENTS)
        meta = [ev for ev in doc["traceEvents"] if ev["ph"] == "M"]
        proc_names = {
            ev["pid"]: ev["args"]["name"]
            for ev in meta
            if ev["name"] == "process_name"
        }
        assert proc_names == {
            100: "main (pid 100)",
            200: "worker (pid 200)",
            201: "worker (pid 201)",
        }
        thread_meta = {
            (ev["pid"], ev["tid"])
            for ev in meta
            if ev["name"] == "thread_name"
        }
        assert thread_meta == {(100, 11), (200, 21), (201, 31)}

    def test_events_sorted_by_timestamp_regardless_of_input_order(self):
        doc = to_chrome_trace(tuple(reversed(FIXED_EVENTS)))
        ts = [ev["ts"] for ev in doc["traceEvents"] if ev["ph"] != "M"]
        assert ts == sorted(ts)

    def test_instants_are_thread_scoped(self):
        doc = to_chrome_trace(FIXED_EVENTS)
        instants = [ev for ev in doc["traceEvents"] if ev["ph"] == "i"]
        assert instants and all(ev["s"] == "t" for ev in instants)

    def test_from_snapshot_and_file_write(self, tmp_path):
        trace.enable()
        try:
            reg = MetricsRegistry()
            with use(reg):
                trace.instant("mp.chunk_begin", chunk=0)
            snap = reg.snapshot()
        finally:
            trace.disable()
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), snap, manifest={"workers": 2})
        doc = json.loads(path.read_text())
        assert doc["otherData"] == {"workers": 2}
        names = [ev["name"] for ev in doc["traceEvents"]]
        assert "mp.chunk_begin" in names
