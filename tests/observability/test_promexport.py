"""Prometheus exposition: rendering contract + the stdlib endpoint.

Every rendered scrape must round-trip through the repo's own parser
(:func:`parse_exposition`) — the same validation the CI metrics-smoke job
runs against a live endpoint — and histogram buckets must be cumulative
with ``le`` bounds matching the internal log-bucket grid.
"""

from __future__ import annotations

import urllib.error
import urllib.request

import pytest

from repro.errors import ObservabilityError
from repro.observability import (
    MetricsRegistry,
    PrometheusEndpoint,
    Series,
    TelemetryAggregator,
    parse_exposition,
    prometheus_name,
    render_telemetry,
    span,
    to_prometheus,
    use,
)
from repro.observability.histogram import bucket_upper


class TestNameSanitisation:
    def test_dots_become_underscores(self):
        assert prometheus_name("mp.chunk_timeouts") == "mp_chunk_timeouts"

    def test_illegal_chars_and_leading_digit(self):
        assert prometheus_name("9a-b.c") == "_9a_b_c"


class TestRendering:
    def _snapshot(self):
        reg = MetricsRegistry()
        reg.inc("pipeline.reads", 1936)
        reg.inc("mp.chunk_retries", 2)
        reg.gauge_max("mp.shm_bytes", 4096)
        reg.observe("mp.chunk_map_seconds", 0.1)
        reg.observe("mp.chunk_map_seconds", 0.1)
        reg.observe("mp.chunk_map_seconds", 3.0)
        with use(reg):
            with span("align"):
                pass
        return reg.snapshot()

    def test_counters_gauges_spans_round_trip(self):
        text = to_prometheus(self._snapshot())
        exp = parse_exposition(text)
        assert exp.value("pipeline_reads_total") == 1936
        assert exp.value("mp_chunk_retries_total") == 2
        assert exp.value("mp_shm_bytes") == 4096
        assert exp.types["pipeline_reads_total"] == "counter"
        assert exp.types["mp_shm_bytes"] == "gauge"
        assert exp.value("obs_span_count_total", span="align") == 1
        assert exp.types["obs_span_count_total"] == "counter"

    def test_histogram_buckets_are_cumulative_with_grid_bounds(self):
        text = to_prometheus(self._snapshot())
        exp = parse_exposition(text)
        assert exp.types["mp_chunk_map_seconds"] == "histogram"
        buckets = sorted(
            exp.series("mp_chunk_map_seconds_bucket"),
            key=lambda pair: float("inf")
            if pair[0]["le"] == "+Inf"
            else float(pair[0]["le"]),
        )
        les = [labels["le"] for labels, _ in buckets]
        assert les[-1] == "+Inf"
        counts = [val for _, val in buckets]
        assert counts == sorted(counts), "bucket series must be cumulative"
        assert exp.value("mp_chunk_map_seconds_count") == 3
        assert exp.value("mp_chunk_map_seconds_sum") == pytest.approx(3.2)
        # The two 0.1s observations share a bucket whose upper bound comes
        # from the internal log grid.
        finite = [
            (float(labels["le"]), val)
            for labels, val in buckets
            if labels["le"] not in ("+Inf",)
        ]
        first_le, first_cum = finite[0]
        assert first_cum == 2
        assert any(
            first_le == pytest.approx(bucket_upper(i)) for i in range(-40, 40)
        )

    def test_quantile_estimates_from_rendered_buckets(self):
        exp = parse_exposition(to_prometheus(self._snapshot()))
        p50 = exp.histogram_quantile("mp_chunk_map_seconds", 0.5)
        assert 0.05 <= p50 <= 0.2

    def test_extra_series_with_labels(self):
        extra = Series(
            name="mp.worker_busy",
            kind="gauge",
            help="test",
            samples=(({"worker": "11"}, 1.0), ({"worker": "12"}, 0.0)),
        )
        reg = MetricsRegistry()
        exp = parse_exposition(to_prometheus(reg.snapshot(), extra=(extra,)))
        assert exp.value("mp_worker_busy", worker="11") == 1.0
        assert exp.value("mp_worker_busy", worker="12") == 0.0

    def test_duplicate_family_rejected(self):
        reg = MetricsRegistry()
        reg.gauge_max("mp.workers", 2)
        clash = Series(name="mp.workers", kind="gauge", help="", samples=())
        with pytest.raises(ObservabilityError):
            to_prometheus(reg.snapshot(), extra=(clash,))

    def test_render_telemetry_includes_per_worker_series(self):
        agg = TelemetryAggregator(clock=lambda: 1000.0)
        import multiprocessing as mp

        recv, send = mp.Pipe(duplex=False)
        agg.register(77, recv)
        exp = parse_exposition(render_telemetry(agg))
        assert exp.value("mp_workers") == 1
        assert exp.value("mp_worker_heartbeat_age_seconds", worker="77") == 0.0
        assert exp.value("mp_worker_stalled", worker="77") == 0.0
        agg.close()
        send.close()


class TestEndpoint:
    def test_serves_parseable_metrics(self):
        reg = MetricsRegistry()
        reg.inc("pipeline.reads", 10)
        endpoint = PrometheusEndpoint(lambda: to_prometheus(reg.snapshot()))
        url = endpoint.start()
        try:
            with urllib.request.urlopen(url, timeout=5) as resp:
                assert resp.headers["Content-Type"].startswith("text/plain")
                exp = parse_exposition(resp.read().decode("utf-8"))
            assert exp.value("pipeline_reads_total") == 10
            # Live updates: the next scrape sees new values, no caching.
            reg.inc("pipeline.reads", 5)
            with urllib.request.urlopen(url, timeout=5) as resp:
                exp = parse_exposition(resp.read().decode("utf-8"))
            assert exp.value("pipeline_reads_total") == 15
        finally:
            endpoint.close()

    def test_index_page_and_404(self):
        endpoint = PrometheusEndpoint(lambda: "")
        url = endpoint.start()
        base = url.rsplit("/metrics", 1)[0]
        try:
            with urllib.request.urlopen(base + "/", timeout=5) as resp:
                assert b"/metrics" in resp.read()
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(base + "/nope", timeout=5)
            assert err.value.code == 404
        finally:
            endpoint.close()

    def test_collect_failure_returns_500_not_crash(self):
        def boom() -> str:
            raise RuntimeError("scrape-time failure")

        endpoint = PrometheusEndpoint(boom)
        url = endpoint.start()
        try:
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(url, timeout=5)
            assert err.value.code == 500
        finally:
            endpoint.close()

    def test_close_is_idempotent_and_frees_port(self):
        endpoint = PrometheusEndpoint(lambda: "")
        endpoint.start()
        port = endpoint.port
        endpoint.close()
        endpoint.close()
        # The port is reusable immediately after close.
        rebound = PrometheusEndpoint(lambda: "", port=port)
        rebound.start()
        rebound.close()

    def test_bind_failure_raises_observability_error(self):
        holder = PrometheusEndpoint(lambda: "")
        holder.start()
        try:
            clash = PrometheusEndpoint(lambda: "", port=holder.port)
            with pytest.raises(ObservabilityError):
                clash.start()
        finally:
            holder.close()
