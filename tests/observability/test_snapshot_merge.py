"""Merge algebra of snapshots: associativity, identity, commutativity.

Associativity is what lets the parallel drivers fold worker snapshots in
whatever order chunks complete; it is pinned here over randomly generated
snapshots, not just hand-picked cases.
"""

import random

from repro.observability import MetricsRegistry, MetricsSnapshot, merge_snapshots


def random_snapshot(rng: random.Random) -> MetricsSnapshot:
    reg = MetricsRegistry()
    names = ["reads", "pairs", "cells", "batches"]
    for _ in range(rng.randint(0, 6)):
        reg.inc(rng.choice(names), rng.randint(0, 100))
    for _ in range(rng.randint(0, 4)):
        reg.gauge_max(rng.choice(["peak", "bytes"]), rng.randint(0, 1000))
    stages = ["map", "seed", "align", "accumulate", "call"]
    for _ in range(rng.randint(0, 8)):
        depth = rng.randint(1, 3)
        path = tuple(rng.choice(stages) for _ in range(depth))
        # Values chosen as exact binary fractions so float addition is
        # associative and trees can be compared with ==.
        reg.record_span(path, rng.randint(0, 64) / 16.0, count=rng.randint(1, 4))
    return reg.snapshot()


class TestMergeAlgebra:
    def test_associativity_randomised(self):
        rng = random.Random(2012)
        for _ in range(50):
            a, b, c = (random_snapshot(rng) for _ in range(3))
            left = a.merge(b).merge(c)
            right = a.merge(b.merge(c))
            assert left == right

    def test_commutativity_randomised(self):
        rng = random.Random(42)
        for _ in range(50):
            a, b = random_snapshot(rng), random_snapshot(rng)
            assert a.merge(b) == b.merge(a)

    def test_empty_is_identity(self):
        rng = random.Random(7)
        a = random_snapshot(rng)
        empty = MetricsSnapshot.empty()
        assert a.merge(empty) == a
        assert empty.merge(a) == a

    def test_merge_is_pure(self):
        rng = random.Random(3)
        a, b = random_snapshot(rng), random_snapshot(rng)
        a_before, b_before = a.as_dict(), b.as_dict()
        a.merge(b)
        assert a.as_dict() == a_before
        assert b.as_dict() == b_before

    def test_merge_snapshots_varargs(self):
        rng = random.Random(9)
        parts = [random_snapshot(rng) for _ in range(5)]
        folded = merge_snapshots(*parts)
        manual = MetricsSnapshot.empty()
        for p in parts:
            manual = manual.merge(p)
        assert folded == manual
        assert merge_snapshots() == MetricsSnapshot.empty()


class TestMergeSemantics:
    def test_counters_add_gauges_max_spans_add(self):
        ra, rb = MetricsRegistry(), MetricsRegistry()
        ra.inc("n", 3)
        rb.inc("n", 4)
        ra.gauge_max("peak", 10)
        rb.gauge_max("peak", 8)
        ra.record_span(("map", "seed"), 1.0, count=2)
        rb.record_span(("map", "seed"), 0.5, count=1)
        rb.record_span(("call",), 0.25)
        merged = ra.snapshot().merge(rb.snapshot())
        assert merged.counters["n"] == 7
        assert merged.gauges["peak"] == 10
        assert merged.span_seconds("map/seed") == 1.5
        assert merged.span_count("map/seed") == 3
        assert merged.span_seconds("call") == 0.25

    def test_roundtrip_dict_codec(self):
        rng = random.Random(11)
        snap = random_snapshot(rng)
        assert MetricsSnapshot.from_dict(snap.as_dict()) == snap

    def test_leaf_totals_flattens_across_depths(self):
        reg = MetricsRegistry()
        reg.record_span(("run", "align"), 1.0)
        reg.record_span(("align",), 0.5, count=2)
        totals = reg.snapshot().leaf_totals()
        assert totals["align"] == (1.5, 3)
        assert totals["run"] == (0.0, 0)
