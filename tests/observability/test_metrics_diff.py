"""The perf-regression gate: flattening, direction classes, thresholds."""

import json

import pytest

from repro.observability.diffing import (
    classify_direction,
    diff_documents,
    diff_files,
    flatten_numeric,
    format_diff,
    has_regressions,
)


class TestDirectionClassifier:
    @pytest.mark.parametrize("key", [
        "full.wall_seconds", "banded.cells_banded", "mp.chunk_retries",
        "mp.worker_deaths", "histograms.mp.chunk_map_seconds.p99",
        "obs.trace_dropped", "trace_overhead_pct",
    ])
    def test_lower_is_better(self, key):
        assert classify_direction(key) == "lower"

    @pytest.mark.parametrize("key", [
        # reads_per_second contains the "seconds" token too: the
        # higher-is-better vocabulary must win.
        "full.reads_per_second", "serial.dp_cells_per_second",
        "speedup", "cell_reduction",
    ])
    def test_higher_is_better(self, key):
        assert classify_direction(key) == "higher"

    def test_neutral_otherwise(self):
        assert classify_direction("workload.reads") == "neutral"


class TestFlatten:
    def test_nested_paths_and_metadata_skips(self):
        doc = {
            "schema": "repro.metrics/v2",
            "manifest": {"seed": 7},
            "counters": {"pipeline.reads": 100},
            "histograms": {
                "mp.chunk_map_seconds": {"p50": 0.5, "buckets": {"0": 4}}
            },
            "calls_identical": True,
        }
        flat = flatten_numeric(doc)
        assert flat == {
            "counters.pipeline.reads": 100.0,
            "histograms.mp.chunk_map_seconds.p50": 0.5,
        }


class TestDiffAndGate:
    BASE = {
        "wall_seconds": 10.0,
        "reads_per_second": 200.0,
        "workload": {"reads": 1000},
    }

    def test_no_change_no_regression(self):
        entries = diff_documents(self.BASE, dict(self.BASE))
        assert not has_regressions(entries, 0.0)
        assert all(e.pct_change == 0.0 for e in entries)

    def test_wall_time_increase_is_a_regression(self):
        current = dict(self.BASE, wall_seconds=13.0)  # +30%
        entries = diff_documents(self.BASE, current)
        assert has_regressions(entries, 20.0)
        assert not has_regressions(entries, 35.0)
        worst = entries[0]
        assert worst.key == "wall_seconds"
        assert worst.regression_pct == pytest.approx(30.0)

    def test_throughput_drop_is_a_regression(self):
        current = dict(self.BASE, reads_per_second=100.0)  # -50%
        entries = diff_documents(self.BASE, current)
        assert has_regressions(entries, 20.0)
        assert entries[0].key == "reads_per_second"
        assert entries[0].regression_pct == pytest.approx(50.0)

    def test_improvements_never_gate(self):
        current = dict(self.BASE, wall_seconds=5.0, reads_per_second=400.0)
        entries = diff_documents(self.BASE, current)
        assert not has_regressions(entries, 0.0)

    def test_neutral_keys_never_gate(self):
        current = dict(self.BASE, workload={"reads": 5000})
        entries = diff_documents(self.BASE, current)
        assert not has_regressions(entries, 0.0)

    def test_file_diff_and_report(self, tmp_path):
        base_p, curr_p = tmp_path / "base.json", tmp_path / "curr.json"
        base_p.write_text(json.dumps(self.BASE))
        curr_p.write_text(json.dumps(dict(self.BASE, wall_seconds=13.0)))
        entries = diff_files(str(base_p), str(curr_p))
        report = format_diff(entries, threshold_pct=20.0)
        assert "wall_seconds" in report
        assert "1 regression(s) beyond 20%" in report
        clean = format_diff(diff_files(str(base_p), str(base_p)), 20.0)
        assert "no regressions beyond 20%" in clean


class TestCliGate:
    def _write(self, tmp_path, name, doc):
        p = tmp_path / name
        p.write_text(json.dumps(doc))
        return str(p)

    def test_exit_codes(self, tmp_path, capsys):
        from repro.cli import main

        base = self._write(tmp_path, "base.json", {"wall_seconds": 10.0})
        same = self._write(tmp_path, "same.json", {"wall_seconds": 10.5})
        bad = self._write(tmp_path, "bad.json", {"wall_seconds": 13.0})
        assert main(["metrics", "diff", base, same,
                     "--fail-on-regression", "20"]) == 0
        assert main(["metrics", "diff", base, bad,
                     "--fail-on-regression", "20"]) == 1
        # Without a threshold the diff is informational only.
        assert main(["metrics", "diff", base, bad]) == 0
        out = capsys.readouterr().out
        assert "wall_seconds" in out
