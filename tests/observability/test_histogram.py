"""Histogram metric: merge algebra, bucket boundaries, quantiles.

The merge algebra must be associative and commutative with the empty
histogram as identity — it is what lets worker snapshots fold in any
order.  Bucket counts, totals and extrema merge *exactly*; only ``sum``
is compared approximately (float addition order).
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ObservabilityError
from repro.observability.histogram import (
    GROWTH,
    ZERO_BUCKET,
    Histogram,
    bucket_index,
    bucket_lower,
    bucket_upper,
    merge_histogram_dicts,
)

values = st.floats(
    min_value=-1e12, max_value=1e12, allow_nan=False, allow_infinity=False
)
value_lists = st.lists(values, max_size=30)


def build(vals):
    h = Histogram()
    for v in vals:
        h.record(v)
    return h


def assert_equivalent(a: Histogram, b: Histogram):
    assert a.buckets == b.buckets
    assert a.count == b.count
    assert a.total == pytest.approx(b.total, abs=1e-6, rel=1e-9)
    if a.count:
        assert (a.vmin, a.vmax) == (b.vmin, b.vmax)


class TestBucketBoundaries:
    def test_exact_powers_land_in_their_own_bucket(self):
        # GROWTH**k is the inclusive *upper* bound of bucket k.
        for k in range(-40, 41):
            assert bucket_index(GROWTH**k) == k

    def test_interval_is_lower_exclusive_upper_inclusive(self):
        for k in (-8, -1, 0, 1, 13):
            upper = bucket_upper(k)
            assert bucket_index(upper) == k
            assert bucket_index(upper * 1.001) == k + 1
            assert bucket_index(bucket_lower(k) * 1.001) == k

    def test_nonpositive_and_nan_go_to_zero_bucket(self):
        assert bucket_index(0.0) == ZERO_BUCKET
        assert bucket_index(-3.5) == ZERO_BUCKET
        assert bucket_index(float("nan")) == ZERO_BUCKET
        assert bucket_upper(ZERO_BUCKET) == 0.0

    def test_one_lands_in_bucket_zero(self):
        assert bucket_index(1.0) == 0

    @given(st.floats(min_value=1e-12, max_value=1e12))
    def test_value_always_within_its_bucket(self, v):
        idx = bucket_index(v)
        # Snap tolerance: the bounds hold up to ~1e-9 relative noise.
        assert bucket_lower(idx) * (1 - 1e-9) <= v <= bucket_upper(idx) * (1 + 1e-9)

    @given(value_lists)
    def test_vectorised_bucketing_matches_scalar(self, vals):
        h_scalar = build(vals)
        h_vec = Histogram()
        h_vec.record_array(np.asarray(vals, dtype=np.float64))
        assert_equivalent(h_scalar, h_vec)


class TestMergeAlgebra:
    @settings(max_examples=60)
    @given(value_lists, value_lists)
    def test_commutative(self, xs, ys):
        ab = build(xs)
        ab.merge(build(ys))
        ba = build(ys)
        ba.merge(build(xs))
        assert_equivalent(ab, ba)

    @settings(max_examples=60)
    @given(value_lists, value_lists, value_lists)
    def test_associative(self, xs, ys, zs):
        left = build(xs)
        bc = build(ys)
        bc.merge(build(zs))
        left.merge(bc)  # a + (b + c)
        right = build(xs)
        right.merge(build(ys))
        right.merge(build(zs))  # (a + b) + c
        assert_equivalent(left, right)

    @given(value_lists)
    def test_empty_is_identity(self, xs):
        h = build(xs)
        h.merge(Histogram())
        assert_equivalent(h, build(xs))

    @given(value_lists, value_lists)
    def test_merge_equals_union_recording(self, xs, ys):
        merged = build(xs)
        merged.merge(build(ys))
        assert_equivalent(merged, build(xs + ys))

    def test_dict_merge_roundtrip(self):
        a, b = build([1.0, 2.0]), build([0.0, 8.0])
        combined = Histogram.from_dict(
            merge_histogram_dicts(a.as_dict(), b.as_dict())
        )
        expected = build([1.0, 2.0, 0.0, 8.0])
        assert_equivalent(combined, expected)


class TestQuantiles:
    def test_empty_is_nan(self):
        assert math.isnan(Histogram().quantile(0.5))

    def test_quantile_clamped_to_observed_range(self):
        h = build([3.0] * 100)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert h.quantile(q) == 3.0

    def test_quantiles_are_monotone_and_bucket_accurate(self):
        h = build([0.1] * 50 + [1.0] * 40 + [10.0] * 10)
        p50, p90, p99 = h.quantile(0.5), h.quantile(0.9), h.quantile(0.99)
        assert p50 <= p90 <= p99
        assert p50 == pytest.approx(0.1, rel=GROWTH - 1)
        assert p90 == pytest.approx(1.0, rel=GROWTH - 1)
        assert p99 == pytest.approx(10.0, rel=GROWTH - 1)

    def test_out_of_range_q_rejected(self):
        with pytest.raises(ObservabilityError):
            build([1.0]).quantile(1.5)


class TestCodecAndValidation:
    def test_as_dict_from_dict_roundtrip(self):
        h = build([0.5, 0.0, 123.4])
        assert Histogram.from_dict(h.as_dict()) == h

    def test_from_dict_accepts_json_string_bucket_keys(self):
        h = build([2.0])
        d = h.as_dict()
        d["buckets"] = {str(k): v for k, v in d["buckets"].items()}
        assert Histogram.from_dict(d) == h

    def test_malformed_dict_rejected(self):
        with pytest.raises(ObservabilityError, match="malformed histogram"):
            Histogram.from_dict({"count": 1, "buckets": {"x.y": 1}})

    def test_nonpositive_count_rejected(self):
        with pytest.raises(ObservabilityError):
            Histogram().record(1.0, count=0)
