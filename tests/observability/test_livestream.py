"""Live telemetry plane: delta algebra, worker publisher, aggregator.

The delta contract is the heart of the sideband: for any two successive
cumulative snapshots ``prev`` then ``curr`` of one registry,
``merge(prev, curr.delta_since(prev))`` must reconstruct ``curr`` for
counters, histogram buckets and span counts — so the aggregator can fold
per-interval deltas from many workers into one coherent live registry.
The aggregator itself is driven synchronously here (``step()`` + an
injected clock); the thread/pipe path is covered by the end-to-end
pipeline telemetry test.
"""

from __future__ import annotations

import multiprocessing as mp
import time

import pytest

from repro.errors import ObservabilityError
from repro.observability import (
    MetricsRegistry,
    TelemetryAggregator,
    use,
)
from repro.observability.histogram import subtract_histogram_dicts
from repro.observability.livestream import (
    busy_state,
    mark_busy,
    mark_idle,
    publish_loop,
    start_publisher,
)
from repro.observability.snapshot import MetricsSnapshot


def _registry_with_activity(reads: int = 100, cells: int = 5000) -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.inc("pipeline.reads", reads)
    reg.inc("phmm.forward_cells", cells)
    reg.observe("mp.chunk_map_seconds", 0.25)
    reg.gauge_max("mp.shm_bytes", 1 << 20)
    return reg


class TestDeltaAlgebra:
    def test_merge_prev_delta_reconstructs_curr(self):
        reg = _registry_with_activity()
        prev = reg.snapshot_values()
        reg.inc("pipeline.reads", 50)
        reg.observe("mp.chunk_map_seconds", 0.5)
        reg.observe("mp.chunk_map_seconds", 1.5)
        with use(reg):
            from repro.observability import span

            with span("align"):
                pass
        curr = reg.snapshot_values()
        delta = curr.delta_since(prev)
        rebuilt = prev.merge(delta)
        assert rebuilt.counter("pipeline.reads") == curr.counter("pipeline.reads")
        assert rebuilt.histogram("mp.chunk_map_seconds")["count"] == (
            curr.histogram("mp.chunk_map_seconds")["count"]
        )
        assert rebuilt.histogram("mp.chunk_map_seconds")["buckets"] == (
            curr.histogram("mp.chunk_map_seconds")["buckets"]
        )
        assert rebuilt.span_count("align") == curr.span_count("align")

    def test_delta_contains_only_the_increment(self):
        reg = _registry_with_activity(reads=100)
        prev = reg.snapshot_values()
        reg.inc("pipeline.reads", 7)
        delta = reg.snapshot_values().delta_since(prev)
        assert delta.counter("pipeline.reads") == 7
        # Unchanged counters vanish from the delta entirely.
        assert "phmm.forward_cells" not in delta.counters

    def test_delta_never_carries_events(self):
        import repro.observability.trace as trace

        reg = MetricsRegistry()
        was = trace.enabled()
        trace.enable()
        try:
            with use(reg):
                trace.instant("obs.test_tick")
            prev = MetricsSnapshot.empty()
            delta = reg.snapshot_values().delta_since(prev)
            assert delta.events == ()
        finally:
            if not was:
                trace.disable()

    def test_counter_shrink_raises(self):
        reg = _registry_with_activity(reads=10)
        bigger = reg.snapshot_values()
        smaller_reg = _registry_with_activity(reads=3)
        with pytest.raises(ObservabilityError):
            smaller_reg.snapshot_values().delta_since(bigger)

    def test_histogram_subtract_rejects_shrunk_buckets(self):
        reg = MetricsRegistry()
        reg.observe("mp.chunk_map_seconds", 1.0)
        curr = reg.snapshot_values().histogram("mp.chunk_map_seconds")
        prev = dict(curr)
        prev["count"] = curr["count"] + 1
        with pytest.raises(ObservabilityError):
            subtract_histogram_dicts(curr, prev)


class TestWorkerSide:
    def test_busy_markers_roundtrip(self):
        mark_idle()
        assert busy_state() is None
        mark_busy(3)
        chunk, secs = busy_state()
        assert chunk == 3 and secs >= 0.0
        mark_idle()
        assert busy_state() is None

    def test_publisher_ships_deltas_over_a_real_pipe(self):
        recv, send = mp.Pipe(duplex=False)
        reg = _registry_with_activity(reads=40)
        stop = start_publisher(send, 0.01, registry=reg)
        try:
            assert recv.poll(5.0)
            seq, wall_ts, busy, delta_dict = recv.recv()
            assert seq == 0
            assert abs(wall_ts - time.time()) < 60
            # Activity from before the publisher started is baseline, not
            # delta — a fork-inherited parent registry must not travel.
            delta = MetricsSnapshot.from_dict(delta_dict)
            assert delta.counter("pipeline.reads") == 0
            assert "mp.shm_bytes" not in delta.gauges
            reg.inc("pipeline.reads", 2)
            deadline = time.monotonic() + 5.0
            got = 0.0
            while time.monotonic() < deadline and got != 2:
                if recv.poll(0.1):
                    _, _, _, d = recv.recv()
                    got += MetricsSnapshot.from_dict(d).counter("pipeline.reads")
            assert got == 2  # successive deltas carry only the increment
        finally:
            stop.set()
            recv.close()
            send.close()

    def test_publisher_exits_when_parent_closes_pipe(self):
        recv, send = mp.Pipe(duplex=False)
        reg = MetricsRegistry()
        stop = start_publisher(send, 0.01, registry=reg)
        assert recv.poll(5.0)
        recv.close()
        # The next send hits a broken pipe and the loop returns; give it a
        # moment and confirm by setting stop (idempotent) — no exception
        # escapes the daemon thread either way.
        time.sleep(0.1)
        stop.set()

    def test_publish_loop_resyncs_after_registry_clear(self):
        recv, send = mp.Pipe(duplex=False)
        reg = _registry_with_activity(reads=25)
        stop = start_publisher(send, 0.01, registry=reg)
        try:
            assert recv.poll(5.0)
            recv.recv()  # cumulative 25
            reg.clear()  # counters go backwards: delta would be negative
            reg.inc("pipeline.reads", 4)
            deadline = time.monotonic() + 5.0
            resynced = False
            while time.monotonic() < deadline and not resynced:
                if recv.poll(0.1):
                    _, _, _, d = recv.recv()
                    resynced = (
                        MetricsSnapshot.from_dict(d).counter("pipeline.reads") == 4
                    )
            assert resynced, "publisher never shipped the full-state resync"
        finally:
            stop.set()
            recv.close()
            send.close()


class _FakeClock:
    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now


def _send_delta(send, seq, reads=0, cells=0, busy=None):
    reg = MetricsRegistry()
    if reads:
        reg.inc("pipeline.reads", reads)
    if cells:
        reg.inc("phmm.forward_cells", cells)
    send.send((seq, time.time(), busy, reg.snapshot_values().as_dict()))


class TestAggregator:
    def test_validation(self):
        with pytest.raises(ObservabilityError):
            TelemetryAggregator(interval=0.0)
        with pytest.raises(ObservabilityError):
            TelemetryAggregator(stall_after=-1.0)
        with pytest.raises(ObservabilityError):
            TelemetryAggregator(ewma_alpha=0.0)

    def test_ingest_folds_deltas_and_tracks_rates(self):
        clock = _FakeClock()
        agg = TelemetryAggregator(interval=1.0, stall_after=5.0, clock=clock)
        recv, send = mp.Pipe(duplex=False)
        agg.register(4242, recv)
        _send_delta(send, 0, reads=100, cells=2000, busy=(7, 0.4))
        agg.step()
        _send_delta(send, 1, reads=50, cells=1000)
        clock.now += 1.0
        agg.step()
        snap = agg.live_snapshot()
        assert snap.counter("pipeline.reads") == 150
        assert snap.counter("phmm.forward_cells") == 3000
        assert snap.counter("obs.telemetry_deltas") == 2
        (view,) = agg.worker_views()
        assert view.pid == 4242 and view.seq == 1
        # First sample seeds the EWMA at 100/s; second folds in 50/s.
        assert view.reads_per_second == pytest.approx(75.0)
        assert not view.stalled
        agg.close()
        send.close()

    def test_malformed_message_counts_decode_error(self):
        agg = TelemetryAggregator(clock=_FakeClock())
        recv, send = mp.Pipe(duplex=False)
        agg.register(1, recv)
        send.send({"not": "a heartbeat"})
        agg.step()
        assert agg.live_snapshot().counter("obs.telemetry_decode_errors") == 1
        agg.close()
        send.close()

    def test_watchdog_flags_silent_worker_once(self):
        clock = _FakeClock()
        agg = TelemetryAggregator(interval=1.0, stall_after=5.0, clock=clock)
        recv, send = mp.Pipe(duplex=False)
        agg.register(7, recv)
        clock.now += 6.0  # no heartbeat for longer than stall_after
        agg.step()
        agg.step()  # still stalled: no re-increment on the held edge
        snap = agg.live_snapshot()
        assert snap.counter("mp.worker_stalls") == 1
        assert snap.gauges["mp.worker_heartbeat_age_seconds_max"] >= 6.0
        (view,) = agg.worker_views()
        assert view.stalled
        # Recovery then a second silence re-arms the edge.
        _send_delta(send, 0)
        agg.step()
        assert not agg.worker_views()[0].stalled
        clock.now += 6.0
        agg.step()
        assert agg.live_snapshot().counter("mp.worker_stalls") == 2
        agg.close()
        send.close()

    def test_watchdog_flags_long_busy_chunk_despite_heartbeats(self):
        clock = _FakeClock()
        agg = TelemetryAggregator(interval=1.0, stall_after=5.0, clock=clock)
        recv, send = mp.Pipe(duplex=False)
        agg.register(9, recv)
        # Heartbeats keep arriving, but the same chunk has been running
        # for longer than stall_after: busy-stall.
        _send_delta(send, 0, busy=(3, 6.5))
        agg.step()
        snap = agg.live_snapshot()
        assert snap.counter("mp.worker_stalls") == 1
        (view,) = agg.worker_views()
        assert view.stalled and view.busy_chunk == 3
        agg.close()
        send.close()

    def test_eof_unregisters_worker(self):
        agg = TelemetryAggregator(clock=_FakeClock())
        recv, send = mp.Pipe(duplex=False)
        agg.register(5, recv)
        send.close()
        agg.step()
        assert agg.worker_views() == []
        agg.close()

    def test_background_thread_drains_real_pipe(self):
        agg = TelemetryAggregator(interval=0.05, stall_after=60.0)
        recv, send = mp.Pipe(duplex=False)
        agg.register(11, recv)
        agg.start()
        try:
            _send_delta(send, 0, reads=10)
            deadline = time.monotonic() + 5.0
            while (
                time.monotonic() < deadline
                and agg.live_snapshot().counter("pipeline.reads") != 10
            ):
                time.sleep(0.02)
            assert agg.live_snapshot().counter("pipeline.reads") == 10
        finally:
            agg.close()
            send.close()
