"""Registry semantics: counter atomicity, gauges, scopes, absorb."""

import pickle
import threading

import pytest

from repro.errors import ObservabilityError
from repro.observability import (
    MetricsRegistry,
    current,
    global_registry,
    scope,
    use,
)


class TestCounters:
    def test_inc_creates_and_accumulates(self):
        reg = MetricsRegistry()
        reg.inc("x")
        reg.inc("x", 4)
        assert reg.snapshot().counters["x"] == 5

    def test_negative_increment_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ObservabilityError):
            reg.inc("x", -1)

    def test_atomicity_under_threads(self):
        reg = MetricsRegistry()
        n_threads, n_incs = 8, 5000

        def hammer():
            for _ in range(n_incs):
                reg.inc("hits")
                reg.gauge_max("high", 1.0)

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.snapshot().counters["hits"] == n_threads * n_incs

    def test_atomicity_through_parent_tee(self):
        parent = MetricsRegistry()
        children = [MetricsRegistry(parent=parent) for _ in range(4)]

        def hammer(child):
            for _ in range(2000):
                child.inc("hits")

        threads = [threading.Thread(target=hammer, args=(c,)) for c in children]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert parent.snapshot().counters["hits"] == 8000
        for c in children:
            assert c.snapshot().counters["hits"] == 2000


class TestGauges:
    def test_gauge_max_keeps_high_water_mark(self):
        reg = MetricsRegistry()
        reg.gauge_max("peak", 10)
        reg.gauge_max("peak", 3)
        reg.gauge_max("peak", 25)
        assert reg.snapshot().gauges["peak"] == 25


class TestScopes:
    def test_scope_tees_to_enclosing_registry(self):
        outer = MetricsRegistry()
        with use(outer):
            with scope() as inner:
                inner_current = current()
                inner.inc("n", 2)
                inner.record_span(("stage",), 0.5)
            assert current() is outer
        assert inner_current is inner
        assert outer.snapshot().counters["n"] == 2
        assert outer.snapshot().span_seconds("stage") == 0.5
        assert inner.snapshot().counters["n"] == 2

    def test_nested_scopes_chain(self):
        root = MetricsRegistry()
        with use(root), scope() as a, scope() as b:
            b.inc("n")
        for reg in (root, a, b):
            assert reg.snapshot().counters["n"] == 1

    def test_scope_isolates_sibling_measurements(self):
        root = MetricsRegistry()
        with use(root):
            with scope() as first:
                current().inc("n")
            with scope() as second:
                current().inc("n", 9)
        assert first.snapshot().counters["n"] == 1
        assert second.snapshot().counters["n"] == 9
        assert root.snapshot().counters["n"] == 10

    def test_default_registry_is_global(self):
        assert current() is global_registry()


class TestAbsorbAndClear:
    def test_absorb_folds_a_snapshot_in(self):
        src = MetricsRegistry()
        src.inc("reads", 10)
        src.gauge_max("peak", 7)
        src.record_span(("map", "seed"), 1.0, count=3)
        dst = MetricsRegistry()
        dst.inc("reads", 5)
        dst.gauge_max("peak", 9)
        dst.absorb(src.snapshot())
        snap = dst.snapshot()
        assert snap.counters["reads"] == 15
        assert snap.gauges["peak"] == 9
        assert snap.span_seconds("map/seed") == 1.0
        assert snap.span_count("map/seed") == 3
        assert snap.span_count("map") == 0  # ancestor created, not yet timed

    def test_snapshot_is_picklable_and_detached(self):
        reg = MetricsRegistry()
        reg.record_span(("a", "b"), 0.25)
        snap = reg.snapshot()
        reg.record_span(("a", "b"), 0.25)  # must not mutate the snapshot
        assert snap.span_seconds("a/b") == 0.25
        clone = pickle.loads(pickle.dumps(snap))
        assert clone == snap

    def test_clear(self):
        reg = MetricsRegistry()
        reg.inc("x")
        reg.record_span(("s",), 0.1)
        reg.clear()
        snap = reg.snapshot()
        assert snap.counters == {} and snap.spans == {} and snap.gauges == {}
